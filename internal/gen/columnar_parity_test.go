package gen

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
)

// The columnar parity suite: every generated scenario and update stream
// is executed twice — once with the columnar frozen-core read paths
// forced off (the row-oriented reference) and once forced on — and the
// results of all four semantics must be byte-identical. This is the
// oracle for the columnar storage layer: batch probes, pushed-down
// column checks, zero-copy lookups, and columnar snapshots may change
// how tuples are visited, never which repair comes out.

// parityModes runs the given group once per storage mode — the
// row-oriented reference first, then the columnar paths — restoring the
// prior setting afterwards. The toggle is process-global, so fn must
// confine its parallel subtests to the group subtest it is handed;
// t.Run does not return until those subtests finish, which is exactly
// the barrier the toggle needs.
func parityModes(t *testing.T, fn func(t *testing.T, columnar bool)) {
	for _, m := range []struct {
		name string
		on   bool
	}{{"row", false}, {"columnar", true}} {
		prev := engine.SetColumnarEnabled(m.on)
		t.Run(m.name, func(t *testing.T) { fn(t, m.on) })
		engine.SetColumnarEnabled(prev)
	}
}

// TestColumnarParityQuick checks scenario parity on the fixed CI seed
// block: per seed, fork a frozen snapshot and run all four semantics;
// the columnar pass must reproduce the row pass byte for byte.
func TestColumnarParityQuick(t *testing.T) {
	refs := make([][]string, quickScenarios+1) // seed → row-mode keys per semantics
	parityModes(t, func(t *testing.T, columnar bool) {
		for seed := int64(1); seed <= quickScenarios; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				sc := Generate(seed)
				snap := sc.DB.Freeze()
				got := make([]string, len(core.AllSemantics))
				for i, sem := range core.AllSemantics {
					res, _, err := core.Run(snap.Fork(), sc.Program, sem)
					if err != nil {
						t.Fatalf("seed %d: %s: %v", seed, sem, err)
					}
					got[i] = sortedResultKeys(res)
				}
				if !columnar {
					refs[seed] = got
					return
				}
				want := refs[seed]
				if want == nil {
					t.Fatalf("seed %d: row-mode reference missing (row pass failed?)", seed)
				}
				for i, sem := range core.AllSemantics {
					if got[i] != want[i] {
						t.Fatalf("seed %d: %s columnar result diverged\ncolumnar: %s\nrow:      %s\nprogram:\n%s",
							seed, sem, got[i], want[i], sc.ProgramSource)
					}
				}
			})
		}
	})
}

// TestColumnarParityUpdateStream checks update-stream parity on the
// fixed CI seed block: per seed, drive the whole stream through a
// mutable server session — freeze, fork, incremental updates, version
// pinning — recording every (version, semantics) answer; the columnar
// pass must reproduce the row pass byte for byte.
func TestColumnarParityUpdateStream(t *testing.T) {
	refs := make([]map[string]string, quickStreams+1) // seed → "v<N>/<sem>" → keys
	parityModes(t, func(t *testing.T, columnar bool) {
		for seed := int64(1); seed <= quickStreams; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				us := GenerateUpdateStream(seed, streamOps)
				sc := us.Scenario
				ctx := context.Background()
				svc := server.New(server.Config{MaxVersions: us.NumVersions() + 1})
				if err := svc.Register("s", sc.Schema, sc.DB, sc.Program); err != nil {
					t.Fatalf("seed %d: register: %v", seed, err)
				}
				got := make(map[string]string)
				record := func(version uint64) {
					for _, sem := range core.AllSemantics {
						res, _, gotVer, err := svc.RepairVersioned(ctx, "s", sem, server.RequestOptions{Version: version})
						if err != nil {
							t.Fatalf("seed %d v%d: %s: %v", seed, version, sem, err)
						}
						if gotVer != version {
							t.Fatalf("seed %d v%d: repair executed at version %d", seed, version, gotVer)
						}
						got[fmt.Sprintf("v%d/%s", version, sem)] = sortedResultKeys(res)
					}
				}
				record(1)
				version := uint64(1)
				for i, op := range us.Ops {
					res, err := svc.Update(ctx, "s", op.Inserts, op.Deletes, server.RequestOptions{})
					if err != nil {
						t.Fatalf("seed %d: update %d: %v", seed, i, err)
					}
					version = res.Version
					record(version)
				}
				if !columnar {
					refs[seed] = got
					return
				}
				want := refs[seed]
				if want == nil {
					t.Fatalf("seed %d: row-mode reference missing (row pass failed?)", seed)
				}
				if len(got) != len(want) {
					t.Fatalf("seed %d: columnar pass recorded %d answers, row pass %d", seed, len(got), len(want))
				}
				for k, w := range want {
					if got[k] != w {
						t.Fatalf("seed %d: %s columnar result diverged\ncolumnar: %s\nrow:      %s\nprogram:\n%s",
							seed, k, got[k], w, sc.ProgramSource)
					}
				}
			})
		}
	})
}
