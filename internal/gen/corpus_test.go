package gen

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpora regenerates the committed fuzz seed corpora under
// internal/datalog/testdata/fuzz and internal/engine/testdata/fuzz from
// generated scenarios. It is a maintenance tool, not a test: run
//
//	WRITE_FUZZ_CORPORA=1 go test -run WriteFuzzCorpora ./internal/gen
//
// and commit the result. The corpora give `go test -fuzz` structurally
// valid starting points (real programs, real snapshot bytes) instead of
// leaving it to mutate its way from hand-written seeds.
func TestWriteFuzzCorpora(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPORA") == "" {
		t.Skip("set WRITE_FUZZ_CORPORA=1 to (re)write the fuzz seed corpora")
	}

	writeCorpus := func(dir, name, goLiteral string) {
		t.Helper()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n" + goLiteral + "\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stringCorpus := func(dir, name, s string) {
		writeCorpus(dir, name, "string("+strconv.Quote(s)+")")
	}
	bytesCorpus := func(dir, name string, b []byte) {
		writeCorpus(dir, name, "[]byte("+strconv.Quote(string(b))+")")
	}

	const (
		parseDir = "../datalog/testdata/fuzz/FuzzParse"
		lexDir   = "../datalog/testdata/fuzz/FuzzLexer"
		snapDir  = "../engine/testdata/fuzz/FuzzSnapshot"
		valDir   = "../engine/testdata/fuzz/FuzzParseValue"
	)

	for i, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		sc := Generate(seed)
		stringCorpus(parseDir, fmt.Sprintf("gen-%02d", i), sc.ProgramSource)
	}
	for i, seed := range []int64{4, 6, 9, 15} {
		sc := Generate(seed)
		stringCorpus(lexDir, fmt.Sprintf("gen-%02d", i), sc.ProgramSource)
	}
	for i, seed := range []int64{1, 7, 11, 16, 23, 42} {
		sc := Generate(seed)
		var buf bytes.Buffer
		if err := sc.DB.Save(&buf); err != nil {
			t.Fatalf("seed %d: save: %v", seed, err)
		}
		bytesCorpus(snapDir, fmt.Sprintf("gen-%02d", i), buf.Bytes())
	}
	// Value corpus: the constant shapes the generator itself produces,
	// plus near-miss variants for the parser's edge cases.
	for i, s := range []string{"0", "3", "'a'", "'c'", "-2", "2.25", "R0(0,'b')", "v0"} {
		stringCorpus(valDir, fmt.Sprintf("gen-%02d", i), s)
	}
}
