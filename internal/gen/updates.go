// Update streams: random interleavings of base-table inserts and deletes
// over a generated scenario, for testing incremental (versioned) repair
// against from-scratch recomputation. Like scenarios, streams are
// deterministic per seed.
//
// The stream generator tracks a model of the live base rows as it draws
// operations, so deletes usually hit live content (with occasional
// deliberate misses) and the expected instance at every version is known
// exactly: BaseRowsAfter(n) reproduces the base state a fresh session
// registered at that version would hold.

package gen

import (
	"math/rand"

	"repro/internal/engine"
)

// StreamOp is one update batch: deletes apply first, then inserts
// (engine.Snapshot.Apply order).
type StreamOp struct {
	Inserts []engine.Row
	Deletes []engine.Row
}

// StreamShape weights the batch shapes a stream draws: per-batch op
// counts are uniform over [MinDeletes, MaxDeletes] and [MinInserts,
// MaxInserts], and each delete targets a random (possibly absent) row
// with probability 1/MissDenom, a live row otherwise. Distinct shapes
// stress distinct warm-start paths: insert-leaning batches the fixpoint
// continuation, delete-heavy ones the over-delete/re-derive pipeline,
// interleaved ones the mixed-batch chaining.
type StreamShape struct {
	MinDeletes, MaxDeletes int
	MinInserts, MaxInserts int
	MissDenom              int
}

// The weighted shape palette. DefaultShape reproduces the historical
// generator draw-for-draw, so fixed seeds keep their streams.
var (
	DefaultShape     = StreamShape{MaxDeletes: 2, MaxInserts: 3, MissDenom: 4}
	DeleteHeavyShape = StreamShape{MinDeletes: 1, MaxDeletes: 4, MaxInserts: 1, MissDenom: 8}
	InterleavedShape = StreamShape{MinDeletes: 1, MaxDeletes: 2, MinInserts: 1, MaxInserts: 2, MissDenom: 4}
)

// ShapeForSeed is the weighted generator knob for seed-sweeping suites:
// half the seed space keeps the historical mixed shape, the rest splits
// between delete-heavy and interleaved batches so incremental delete
// maintenance is exercised on every sweep.
func ShapeForSeed(seed int64) StreamShape {
	switch seed % 4 {
	case 0, 1:
		return DefaultShape
	case 2:
		return DeleteHeavyShape
	default:
		return InterleavedShape
	}
}

// UpdateStream is a scenario plus a deterministic sequence of update
// batches over its base instance.
type UpdateStream struct {
	Scenario *Scenario
	Ops      []StreamOp

	// states[n] holds the live base rows after the first n ops, in the
	// insertion order a fresh registration at that version would use.
	states [][]engine.Row
}

// NumVersions returns the number of distinct base states the stream
// visits: the initial instance plus one per op.
func (us *UpdateStream) NumVersions() int { return len(us.Ops) + 1 }

// BaseRowsAfter returns the live base rows after applying the first n
// ops (n = 0 is the scenario's initial instance), in deterministic
// insertion order. Registering a fresh database with exactly these rows
// reproduces the versioned session's logical state at that version.
// Callers must not mutate the returned slice.
func (us *UpdateStream) BaseRowsAfter(n int) []engine.Row { return us.states[n] }

// GenerateUpdateStream builds the scenario for the seed plus nOps update
// batches over it, using the historical DefaultShape.
func GenerateUpdateStream(seed int64, nOps int) *UpdateStream {
	return GenerateShapedStream(seed, nOps, DefaultShape)
}

// GenerateShapedStream is GenerateUpdateStream with an explicit batch
// shape. The op stream draws from an rng independent of the scenario's,
// so the same (seed, shape) produces the same (scenario, ops) pair
// regardless of how either generator evolves its draw counts.
func GenerateShapedStream(seed int64, nOps int, shape StreamShape) *UpdateStream {
	sc := Generate(seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed57ea4))
	us := &UpdateStream{Scenario: sc}

	// Model of the live base rows: ordered, with a key index for dedup
	// and deletion. Seeded from the scenario's instance in its own
	// insertion order.
	type modelRow struct {
		row  engine.Row
		live bool
	}
	var model []modelRow
	index := make(map[string]int) // content key -> model position
	for _, rs := range sc.Schema.Relations {
		sc.DB.Relation(rs.Name).Scan(func(t *engine.Tuple) bool {
			key := t.Key()
			if _, dup := index[key]; !dup {
				index[key] = len(model)
				model = append(model, modelRow{row: engine.Row{Rel: t.Rel, Vals: t.Vals}, live: true})
			}
			return true
		})
	}
	snapshotState := func() []engine.Row {
		out := make([]engine.Row, 0, len(model))
		for _, m := range model {
			if m.live {
				out = append(out, m.row)
			}
		}
		return out
	}
	us.states = append(us.states, snapshotState())

	randomRow := func() engine.Row {
		ri := rng.Intn(len(sc.Schema.Relations))
		rs := sc.Schema.Relations[ri]
		kinds := sc.kinds[ri]
		vals := make([]engine.Value, rs.Arity())
		for c := range vals {
			if kinds[c] == kindStr {
				vals[c] = engine.Str(string(rune('a' + rng.Intn(3))))
			} else {
				// Mostly in-domain (joins fire), occasionally fresh values
				// no rule constant mentions.
				vals[c] = engine.Int(rng.Intn(DefaultConfig.IntDomain + 2))
			}
		}
		return engine.Row{Rel: rs.Name, Vals: vals}
	}

	for i := 0; i < nOps; i++ {
		var op StreamOp

		// Deletes: mostly live rows (real churn), sometimes a random row
		// that may miss (a no-op the engine must tolerate). Drawn before
		// inserts, mirroring Apply's delete-then-insert order.
		for n := rng.Intn(shape.MaxDeletes-shape.MinDeletes+1) + shape.MinDeletes; n > 0; n-- {
			if rng.Intn(shape.MissDenom) > 0 {
				// Pick a live model row.
				var liveIdx []int
				for mi, m := range model {
					if m.live {
						liveIdx = append(liveIdx, mi)
					}
				}
				if len(liveIdx) == 0 {
					continue
				}
				mi := liveIdx[rng.Intn(len(liveIdx))]
				op.Deletes = append(op.Deletes, model[mi].row)
				model[mi].live = false
			} else {
				row := randomRow()
				op.Deletes = append(op.Deletes, row)
				if mi, ok := index[engine.ContentKey(row.Rel, row.Vals)]; ok {
					model[mi].live = false
				}
			}
		}

		// Inserts: random rows; duplicates of live content are engine
		// no-ops, re-inserts of deleted content resurrect it (with a
		// fresh identity on the engine side).
		for n := rng.Intn(shape.MaxInserts-shape.MinInserts+1) + shape.MinInserts; n > 0; n-- {
			row := randomRow()
			op.Inserts = append(op.Inserts, row)
			key := engine.ContentKey(row.Rel, row.Vals)
			if mi, ok := index[key]; ok {
				if !model[mi].live {
					// Resurrection appends at the end of insertion order,
					// exactly like the engine's fresh-identity re-insert.
					index[key] = len(model)
					model = append(model, modelRow{row: row, live: true})
				}
				// Live duplicate: no-op.
			} else {
				index[key] = len(model)
				model = append(model, modelRow{row: row, live: true})
			}
		}

		us.Ops = append(us.Ops, op)
		us.states = append(us.states, snapshotState())
	}
	return us
}
