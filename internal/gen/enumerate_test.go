package gen

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cqa"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/sideeffect"
)

// enumScenarios is the fixed-seed budget for the enumeration cross-check:
// smaller than quickScenarios because every scenario runs k solver calls
// plus a per-repair brute-force query sweep. CI runs this under -race.
const enumScenarios = 120

// enumK is the repair-space width checked per scenario.
const enumK = 4

// checkEnumeration asserts the repair-space invariants on one scenario:
//
//  1. Every enumerated repair stabilizes the database and deletes only
//     live input tuples (core.Apply verifies both).
//  2. Repairs are pairwise distinct, in nondecreasing cost order, and
//     Repairs[0] matches the single RunIndependent result.
//  3. Classification is exact: certainly-deleted = intersection of the
//     repairs' deletions, possibly-deleted = union.
//  4. Determinism: prepared and forked-input enumeration are
//     byte-identical to the sequential one.
//  5. CQA agreement: for a full scan of each relation, the certain and
//     possible answers match brute-force re-evaluation over every
//     enumerated repair.
func checkEnumeration(t *testing.T, sc *Scenario) {
	t.Helper()
	space, err := core.EnumerateRepairs(sc.DB, sc.Program, enumK)
	if err != nil {
		t.Fatalf("seed %d: enumerate: %v", sc.Seed, err)
	}

	// (1) + (2): stability, deletion-only, distinctness, cost order.
	single, _, err := core.RunIndependent(sc.DB.Clone(), sc.Program, core.IndependentOptions{})
	if err != nil {
		t.Fatalf("seed %d: single independent: %v", sc.Seed, err)
	}
	if got, want := fmt.Sprintf("%v", space.Repairs[0].Keys()), fmt.Sprintf("%v", single.Keys()); got != want {
		t.Fatalf("seed %d: repairs[0] %s != RunIndependent %s\nprogram:\n%s", sc.Seed, got, want, sc.ProgramSource)
	}
	seen := make(map[string]bool, space.K())
	prevCost := int64(-1)
	for i, res := range space.Repairs {
		key := fmt.Sprintf("%v", res.Keys())
		if seen[key] {
			t.Fatalf("seed %d: repair %d duplicates an earlier one: %s\nprogram:\n%s", sc.Seed, i, key, sc.ProgramSource)
		}
		seen[key] = true
		if res.RepairCost < prevCost {
			t.Fatalf("seed %d: repair %d cost %d < previous %d", sc.Seed, i, res.RepairCost, prevCost)
		}
		prevCost = res.RepairCost
		if _, err := core.Apply(sc.DB, sc.Program, res); err != nil {
			t.Fatalf("seed %d: repair %d does not stabilize: %v\nprogram:\n%s", sc.Seed, i, err, sc.ProgramSource)
		}
	}

	// (3) Classification == brute force over the enumerated set.
	inter := make(map[engine.TupleID]int)
	union := make(map[engine.TupleID]bool)
	for _, res := range space.Repairs {
		for _, tp := range res.Deleted {
			inter[tp.TID]++
			union[tp.TID] = true
		}
	}
	wantCertain := 0
	for _, n := range inter {
		if n == space.K() {
			wantCertain++
		}
	}
	if len(space.CertainlyDeleted()) != wantCertain || len(space.PossiblyDeleted()) != len(union) {
		t.Fatalf("seed %d: classification certain=%d/%d possible=%d/%d\nprogram:\n%s",
			sc.Seed, len(space.CertainlyDeleted()), wantCertain, len(space.PossiblyDeleted()), len(union), sc.ProgramSource)
	}
	for _, tp := range space.CertainlyDeleted() {
		for i, res := range space.Repairs {
			if !res.ContainsTuple(tp) {
				t.Fatalf("seed %d: certain tuple %s missing from repair %d", sc.Seed, tp.Key(), i)
			}
		}
	}

	// (4) Determinism across execution strategies.
	wantKeys := spaceFingerprint(space)
	prep, err := datalog.Prepare(sc.Program, sc.Schema)
	if err != nil {
		t.Fatalf("seed %d: prepare: %v", sc.Seed, err)
	}
	prepared, err := core.EnumerateRepairsWith(sc.DB, sc.Program, core.Options{Prepared: prep}, core.EnumerateOptions{K: enumK})
	if err != nil {
		t.Fatalf("seed %d: prepared enumerate: %v", sc.Seed, err)
	}
	if got := spaceFingerprint(prepared); got != wantKeys {
		t.Fatalf("seed %d: prepared enumeration diverged:\n %s\n %s\nprogram:\n%s", sc.Seed, got, wantKeys, sc.ProgramSource)
	}
	forked, err := core.EnumerateRepairs(sc.DB.Freeze().Fork(), sc.Program, enumK)
	if err != nil {
		t.Fatalf("seed %d: forked enumerate: %v", sc.Seed, err)
	}
	if got := spaceFingerprint(forked); got != wantKeys {
		t.Fatalf("seed %d: forked enumeration diverged:\n %s\n %s\nprogram:\n%s", sc.Seed, got, wantKeys, sc.ProgramSource)
	}

	// (5) CQA vs brute force, one full-scan query per relation.
	for _, rs := range sc.Schema.Relations {
		vars := make([]string, rs.Arity())
		for i := range vars {
			vars[i] = fmt.Sprintf("v%d", i)
		}
		src := fmt.Sprintf("Q(%s) :- %s(%s).", strings.Join(vars, ", "), rs.Name, strings.Join(vars, ", "))
		v, err := sideeffect.ParseView(src, sc.Schema)
		if err != nil {
			t.Fatalf("seed %d: %s: %v", sc.Seed, src, err)
		}
		ans, err := cqa.Answer(sc.DB, v, space)
		if err != nil {
			t.Fatalf("seed %d: %s: %v", sc.Seed, src, err)
		}
		wantC, wantP := bruteCQA(t, sc, v, space)
		if got := rowKeys(ans.Certain); !sameKeySet(got, wantC) {
			t.Fatalf("seed %d: %s certain %v != brute force %v\nprogram:\n%s", sc.Seed, src, got, wantC, sc.ProgramSource)
		}
		if got := rowKeys(ans.Possible); !sameKeySet(got, wantP) {
			t.Fatalf("seed %d: %s possible %v != brute force %v\nprogram:\n%s", sc.Seed, src, got, wantP, sc.ProgramSource)
		}
	}
}

func spaceFingerprint(space *core.RepairSpace) string {
	parts := make([]string, space.K())
	for i, res := range space.Repairs {
		parts[i] = fmt.Sprintf("%v", res.Keys())
	}
	return strings.Join(parts, " | ")
}

func rowKeys(rows [][]engine.Value) map[string]bool {
	out := make(map[string]bool, len(rows))
	for _, vals := range rows {
		out[(&sideeffect.Row{Values: vals}).Key()] = true
	}
	return out
}

func sameKeySet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// bruteCQA evaluates the view on each materialized repair and intersects
// and unions the row keys — the definitionally correct answers.
func bruteCQA(t *testing.T, sc *Scenario, v *sideeffect.View, space *core.RepairSpace) (certain, possible map[string]bool) {
	t.Helper()
	possible = make(map[string]bool)
	for _, res := range space.Repairs {
		work := sc.DB.Fork()
		for _, tp := range res.Deleted {
			if !work.DeleteTupleToDelta(tp) {
				t.Fatalf("seed %d: repair tuple %s not deletable", sc.Seed, tp.Key())
			}
		}
		rows, err := v.Eval(work)
		if err != nil {
			t.Fatalf("seed %d: brute eval: %v", sc.Seed, err)
		}
		keys := make(map[string]bool, len(rows))
		for _, row := range rows {
			keys[row.Key()] = true
			possible[row.Key()] = true
		}
		if certain == nil {
			certain = keys
		} else {
			for k := range certain {
				if !keys[k] {
					delete(certain, k)
				}
			}
		}
	}
	return certain, possible
}

// TestGeneratedEnumerationQuick cross-checks repair enumeration and CQA on
// fixed seeds; failures reproduce locally from the seed in the message.
func TestGeneratedEnumerationQuick(t *testing.T) {
	for seed := int64(1); seed <= enumScenarios; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkEnumeration(t, Generate(seed))
		})
	}
}
