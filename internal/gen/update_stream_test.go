package gen

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/server"
)

// The update-stream equivalence suite: for every generated scenario, a
// random stream of base-table update batches is applied to a mutable
// server session, and at every version — for all four semantics — the
// incremental result must be identical to registering a fresh session
// with that version's contents and recomputing from scratch. This is the
// oracle that licenses every warm-start shortcut in core and server
// (read-set pruning, cached-result replay, end-semantics fixpoint
// continuation, insert-seeded stability probes): whatever path a request
// takes, the answer must be indistinguishable from a cold computation.
//
// Results are compared as sorted content-key sets: the incremental and
// fresh lineages assign different tuple identities and insertion
// sequences, so Seq-ordered output differs while the repair itself must
// not.

// quickStreams is the fixed-seed CI budget, mirroring quickScenarios:
// same seeds every run, failures reproduce from the seed alone. CI runs
// this under -race.
const quickStreams = 500

// streamOps is the number of update batches per stream in quick mode:
// initial state + 3 versions exercises version chains, retention, and
// every warm-start path without blowing up CI time.
const streamOps = 3

func sortedResultKeys(res *core.Result) string {
	keys := res.Keys()
	sort.Strings(keys)
	return fmt.Sprintf("%v", keys)
}

// checkUpdateStream drives one scenario's update stream through a
// mutable session and cross-checks every version against from-scratch
// recomputation.
func checkUpdateStream(t *testing.T, us *UpdateStream) {
	t.Helper()
	sc := us.Scenario
	ctx := context.Background()

	prep, err := datalog.Prepare(sc.Program, sc.Schema)
	if err != nil {
		t.Fatalf("seed %d: prepare: %v", sc.Seed, err)
	}

	// Retain every version so the pinned re-checks at the end can still
	// resolve the whole history.
	svc := server.New(server.Config{MaxVersions: us.NumVersions() + 1})
	if err := svc.Register("s", sc.Schema, sc.DB, sc.Program); err != nil {
		t.Fatalf("seed %d: register: %v", sc.Seed, err)
	}

	freshDB := func(n int) *engine.Database {
		db := engine.NewDatabase(sc.Schema)
		for _, row := range us.BaseRowsAfter(n) {
			db.MustInsert(row.Rel, row.Vals...)
		}
		return db
	}

	// expected[version][sem] records the scratch answer for the pinned
	// re-checks after the whole stream has been applied.
	expected := make(map[uint64]map[core.Semantics]string)

	checkVersion := func(n int, version uint64) {
		t.Helper()
		fresh := freshDB(n)
		// The session's logical contents must match the model exactly.
		info := svc.Sessions()[0]
		if info.Warmed && info.Version == version && info.Tuples != fresh.TotalTuples() {
			t.Fatalf("seed %d v%d: session holds %d tuples, model %d", sc.Seed, version, info.Tuples, fresh.TotalTuples())
		}
		expected[version] = make(map[core.Semantics]string)
		for _, sem := range core.AllSemantics {
			want, _, err := core.RunWith(fresh.Fork(), sc.Program, sem, core.Options{Prepared: prep})
			if err != nil {
				t.Fatalf("seed %d v%d: scratch %s: %v", sc.Seed, version, sem, err)
			}
			wantKeys := sortedResultKeys(want)
			expected[version][sem] = wantKeys

			// Sharded-parallel leg: on the same lineage as the scratch run,
			// sharded evaluation (4 shards, no size floor) must be
			// byte-identical — Seq-ordered keys, not merely set-equal — to
			// sequential, at every version of the stream.
			sharded, _, err := core.RunWith(fresh.Fork(), sc.Program, sem,
				core.Options{Prepared: prep, Parallelism: 4, ShardMinTuples: -1})
			if err != nil {
				t.Fatalf("seed %d v%d: sharded %s: %v", sc.Seed, version, sem, err)
			}
			if got, wantExact := fmt.Sprintf("%v", sharded.Keys()), fmt.Sprintf("%v", want.Keys()); got != wantExact {
				t.Fatalf("seed %d v%d: %s sharded %s != sequential %s\nprogram:\n%s",
					sc.Seed, version, sem, got, wantExact, sc.ProgramSource)
			}

			// First incremental request at this version: exercises the
			// cross-version warm-start paths (read-set pruning, end
			// continuation) or a cold run.
			got, _, gotVer, err := svc.RepairVersioned(ctx, "s", sem, server.RequestOptions{Version: version})
			if err != nil {
				t.Fatalf("seed %d v%d: incremental %s: %v", sc.Seed, version, sem, err)
			}
			if gotVer != version {
				t.Fatalf("seed %d v%d: repair executed at version %d", sc.Seed, version, gotVer)
			}
			if gotKeys := sortedResultKeys(got); gotKeys != wantKeys {
				t.Fatalf("seed %d v%d: %s incremental %s != scratch %s\nprogram:\n%s",
					sc.Seed, version, sem, gotKeys, wantKeys, sc.ProgramSource)
			}
			// Second request at the same version: the cached-result replay
			// path must reproduce the identical answer.
			again, _, _, err := svc.RepairVersioned(ctx, "s", sem, server.RequestOptions{Version: version})
			if err != nil {
				t.Fatalf("seed %d v%d: replay %s: %v", sc.Seed, version, sem, err)
			}
			if sortedResultKeys(again) != wantKeys {
				t.Fatalf("seed %d v%d: %s replay diverged", sc.Seed, version, sem)
			}
		}

		// Stability must agree with the scratch instance; repeated probes
		// exercise the insert-seeded warm path once a version is stable.
		wantStable, err := core.CheckStableP(fresh.Fork(), prep)
		if err != nil {
			t.Fatalf("seed %d v%d: scratch stability: %v", sc.Seed, version, err)
		}
		gotStable, _, err := svc.IsStableVersioned(ctx, "s", server.RequestOptions{Version: version})
		if err != nil {
			t.Fatalf("seed %d v%d: incremental stability: %v", sc.Seed, version, err)
		}
		if gotStable != wantStable {
			t.Fatalf("seed %d v%d: incremental stability %v, scratch %v\nprogram:\n%s",
				sc.Seed, version, gotStable, wantStable, sc.ProgramSource)
		}
	}

	// Same-lineage warm chain: an explicit core-level Apply chain whose
	// every version runs each semantics warm (previous result + the
	// batch's ApplyInfo as hints) and cold on the very same snapshot.
	// Shared lineage means shared tuple identities, so the comparison is
	// byte-identity — exact Seq-ordered keys, not merely set equality —
	// across whichever warm path engages: read-set replay, change-probe
	// replay, end continuation, or the delete-maintenance pipeline.
	chain := freshDB(0).Freeze()
	prevRes := make(map[core.Semantics]*core.Result)
	checkWarmChain := func(n int, info *engine.ApplyInfo) {
		t.Helper()
		for _, sem := range core.AllSemantics {
			cold, _, err := core.RunWith(chain.Fork(), sc.Program, sem, core.Options{Prepared: prep})
			if err != nil {
				t.Fatalf("seed %d v%d: chain cold %s: %v", sc.Seed, n, sem, err)
			}
			if info != nil && prevRes[sem] != nil {
				warm := &core.WarmStart{
					PrevResult:  prevRes[sem],
					ChangedRels: info.Changed,
					Inserted:    info.InsertedTuples,
					Deleted:     info.DeletedTuples,
					InsertOnly:  info.InsertOnly(),
				}
				got, repaired, err := core.RunWith(chain.Fork(), sc.Program, sem, core.Options{Prepared: prep, Warm: warm})
				if err != nil {
					t.Fatalf("seed %d v%d: chain warm %s: %v", sc.Seed, n, sem, err)
				}
				if gotKeys, wantKeys := fmt.Sprintf("%v", got.Keys()), fmt.Sprintf("%v", cold.Keys()); gotKeys != wantKeys {
					t.Fatalf("seed %d v%d: %s warm chain %s != cold %s\nprogram:\n%s",
						sc.Seed, n, sem, gotKeys, wantKeys, sc.ProgramSource)
				}
				if stable, err := core.CheckStableP(repaired, prep); err != nil || !stable {
					t.Fatalf("seed %d v%d: %s warm-repaired fork not stable (err=%v)", sc.Seed, n, sem, err)
				}
				prevRes[sem] = got
				continue
			}
			prevRes[sem] = cold
		}
	}
	checkWarmChain(0, nil)

	checkVersion(0, 1)
	version := uint64(1)
	for i, op := range us.Ops {
		res, err := svc.Update(ctx, "s", op.Inserts, op.Deletes, server.RequestOptions{})
		if err != nil {
			t.Fatalf("seed %d: update %d: %v", sc.Seed, i, err)
		}
		if res.Version != version+1 {
			t.Fatalf("seed %d: update %d minted version %d, want %d", sc.Seed, i, res.Version, version+1)
		}
		version = res.Version

		next, info, err := chain.Apply(op.Inserts, op.Deletes)
		if err != nil {
			t.Fatalf("seed %d: chain apply %d: %v", sc.Seed, i, err)
		}
		chain = next
		checkWarmChain(i+1, info)

		checkVersion(i+1, version)
	}

	// Pinned re-checks: after the whole stream, every retained version
	// must still answer exactly as it did when it was the head —
	// read-your-writes across the full history.
	for n := 0; n < us.NumVersions(); n++ {
		v := uint64(n + 1)
		for _, sem := range core.AllSemantics {
			res, _, _, err := svc.RepairVersioned(ctx, "s", sem, server.RequestOptions{Version: v})
			if err != nil {
				t.Fatalf("seed %d: pinned v%d %s: %v", sc.Seed, v, sem, err)
			}
			if got := sortedResultKeys(res); got != expected[v][sem] {
				t.Fatalf("seed %d: pinned v%d %s drifted: %s != %s", sc.Seed, v, sem, got, expected[v][sem])
			}
		}
	}
}

// TestUpdateStreamEquivalenceQuick is the fixed-seed CI mode: 500
// streams, each an independent parallel subtest naming its seed. The
// batch shape is the weighted ShapeForSeed mix, so every sweep covers
// mixed, delete-heavy, and interleaved streams.
func TestUpdateStreamEquivalenceQuick(t *testing.T) {
	for seed := int64(1); seed <= quickStreams; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkUpdateStream(t, GenerateShapedStream(seed, streamOps, ShapeForSeed(seed)))
		})
	}
}

// updateSoakBase mirrors soakBase for the update-stream suite: each
// -count run claims a fresh block of seeds.
var updateSoakBase atomic.Int64

// TestUpdateStreamEquivalenceSoak scales beyond CI, with longer streams:
//
//	GEN_SOAK=2000 go test -race -run UpdateStreamEquivalenceSoak -count=4 ./internal/gen
func TestUpdateStreamEquivalenceSoak(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("GEN_SOAK"))
	if n <= 0 {
		t.Skip("set GEN_SOAK=<streams> to run the soak suite")
	}
	base := updateSoakBase.Add(int64(n)) - int64(n)
	// Distinct offset from both the quick block and the invariants soak.
	const soakOffset = 1 << 21
	for i := 0; i < n; i++ {
		seed := soakOffset + base + int64(i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkUpdateStream(t, GenerateShapedStream(seed, 2*streamOps, ShapeForSeed(seed)))
		})
	}
}

// TestUpdateStreamDeterminism: the same seed yields the same stream and
// the same per-version states.
func TestUpdateStreamDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := GenerateUpdateStream(seed, streamOps)
		b := GenerateUpdateStream(seed, streamOps)
		if fmt.Sprintf("%v", a.Ops) != fmt.Sprintf("%v", b.Ops) {
			t.Fatalf("seed %d: op stream nondeterministic", seed)
		}
		for n := 0; n < a.NumVersions(); n++ {
			if fmt.Sprintf("%v", a.BaseRowsAfter(n)) != fmt.Sprintf("%v", b.BaseRowsAfter(n)) {
				t.Fatalf("seed %d: state %d nondeterministic", seed, n)
			}
		}
	}
}

// TestUpdateStreamCoverage: the seed space must exercise the shapes the
// warm-start machinery branches on — insert-only ops, ops with deletes,
// ops whose batch lands outside the program's read-set, and streams
// whose instances actually need repair.
func TestUpdateStreamCoverage(t *testing.T) {
	insertOnly, withDeletes, outsideReadSet, repairs := 0, 0, 0, 0
	for seed := int64(1); seed <= 200; seed++ {
		us := GenerateUpdateStream(seed, streamOps)
		prep, err := datalog.Prepare(us.Scenario.Program, us.Scenario.Schema)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range us.Ops {
			if len(op.Deletes) == 0 && len(op.Inserts) > 0 {
				insertOnly++
			}
			if len(op.Deletes) > 0 {
				withDeletes++
			}
			touched := false
			for _, row := range append(append([]engine.Row{}, op.Inserts...), op.Deletes...) {
				if prep.Reads(row.Rel) {
					touched = true
				}
			}
			if !touched && len(op.Inserts)+len(op.Deletes) > 0 {
				outsideReadSet++
			}
		}
		if stable, _ := core.CheckStableP(us.Scenario.DB.Fork(), prep); !stable {
			repairs++
		}
	}
	if insertOnly < 50 || withDeletes < 100 {
		t.Errorf("op shape coverage: %d insert-only, %d with deletes", insertOnly, withDeletes)
	}
	if outsideReadSet < 10 {
		t.Errorf("only %d ops land outside the read-set", outsideReadSet)
	}
	if repairs < 50 {
		t.Errorf("only %d/200 streams start unstable", repairs)
	}
}

// TestUpdateStreamShapes: the weighted shapes deliver what they promise —
// delete-heavy streams skew toward deletions, interleaved batches always
// carry both kinds, and the seed-weighted mix covers all three shapes.
func TestUpdateStreamShapes(t *testing.T) {
	heavyDel, heavyIns := 0, 0
	for seed := int64(1); seed <= 100; seed++ {
		us := GenerateShapedStream(seed, streamOps, DeleteHeavyShape)
		for i, op := range us.Ops {
			heavyDel += len(op.Deletes)
			heavyIns += len(op.Inserts)
			// A live-targeting delete draw skips when nothing is live, so
			// the at-least-one guarantee holds only on non-empty states.
			if len(op.Deletes) == 0 && len(us.BaseRowsAfter(i)) > 0 {
				t.Fatalf("seed %d: delete-heavy batch %d with no deletes", seed, i)
			}
		}
		inter := GenerateShapedStream(seed, streamOps, InterleavedShape)
		for i, op := range inter.Ops {
			if len(op.Inserts) == 0 {
				t.Fatalf("seed %d: interleaved batch %d with no inserts", seed, i)
			}
			if len(op.Deletes) == 0 && len(inter.BaseRowsAfter(i)) > 0 {
				t.Fatalf("seed %d: interleaved batch %d with no deletes", seed, i)
			}
		}
	}
	if heavyDel <= 2*heavyIns {
		t.Errorf("delete-heavy streams drew %d deletes vs %d inserts — not delete-heavy", heavyDel, heavyIns)
	}
	shapes := make(map[StreamShape]bool)
	for seed := int64(1); seed <= 8; seed++ {
		shapes[ShapeForSeed(seed)] = true
	}
	if len(shapes) != 3 {
		t.Errorf("ShapeForSeed covers %d shapes over 8 seeds, want 3", len(shapes))
	}
	// The default shape must reproduce the historical generator exactly:
	// fixed-seed failures from old runs stay reproducible.
	a := GenerateUpdateStream(7, streamOps)
	b := GenerateShapedStream(7, streamOps, DefaultShape)
	if fmt.Sprintf("%v", a.Ops) != fmt.Sprintf("%v", b.Ops) {
		t.Fatal("DefaultShape diverged from the historical stream generator")
	}
}
