// Package gen generates random repair scenarios — schema, database, and
// delta program triples — for property-based testing and fuzz-corpus
// seeding. The generator is deterministic per seed, so a failing scenario
// reproduces from its seed alone.
//
// The paper's semantics make generated scenarios self-checking oracles:
// whatever the program, a correct implementation must produce repairs that
// (a) stabilize the database, (b) only delete (output ⊆ input), (c) are
// deterministic across execution strategies, and (d) respect the proved
// containments between semantics (Prop. 3.20). internal/gen's test suite
// asserts exactly those invariants over every generated scenario.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Config bounds the generated scenarios. The zero value means
// DefaultConfig.
type Config struct {
	// MaxRelations bounds the schema size (at least 1 relation is always
	// generated).
	MaxRelations int
	// MaxArity bounds per-relation attribute counts (at least 1).
	MaxArity int
	// MaxRules bounds the program size (at least 1 rule).
	MaxRules int
	// MaxExtraAtoms bounds body atoms beyond the mandatory self atom.
	MaxExtraAtoms int
	// MaxTuplesPerRelation bounds instance sizes (relations may be empty).
	MaxTuplesPerRelation int
	// IntDomain is the size of the integer value domain; small domains
	// make joins actually fire.
	IntDomain int
}

// DefaultConfig keeps scenarios small enough that a full four-semantics,
// four-strategy check runs in a couple of milliseconds.
var DefaultConfig = Config{
	MaxRelations:         3,
	MaxArity:             3,
	MaxRules:             4,
	MaxExtraAtoms:        2,
	MaxTuplesPerRelation: 10,
	IntDomain:            4,
}

// Scenario is one generated (schema, database, program) triple.
type Scenario struct {
	// Seed reproduces the scenario via Generate(Seed).
	Seed int64
	// Schema, DB, Program are the generated objects; Program is validated
	// against Schema.
	Schema  *engine.Schema
	DB      *engine.Database
	Program *datalog.Program
	// SchemaSource and ProgramSource are the textual forms (fuzz-corpus
	// seeds; ProgramSource re-parses to Program).
	SchemaSource  string
	ProgramSource string

	// kinds records each relation's per-column value kinds (schema
	// order), letting update streams draw type-consistent rows.
	kinds [][]kind
}

// Generate builds the scenario for a seed with DefaultConfig. It panics
// only on generator bugs (the generated program failing its own
// validation), never on unlucky seeds.
func Generate(seed int64) *Scenario {
	sc, err := GenerateWith(seed, DefaultConfig)
	if err != nil {
		panic(fmt.Sprintf("gen: seed %d: %v", seed, err))
	}
	return sc
}

// GenerateWith is Generate under explicit bounds; any bound left at zero
// takes its DefaultConfig value, so partial configs are safe.
func GenerateWith(seed int64, cfg Config) (*Scenario, error) {
	if cfg.MaxRelations <= 0 {
		cfg.MaxRelations = DefaultConfig.MaxRelations
	}
	if cfg.MaxArity <= 0 {
		cfg.MaxArity = DefaultConfig.MaxArity
	}
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = DefaultConfig.MaxRules
	}
	if cfg.MaxExtraAtoms < 0 {
		cfg.MaxExtraAtoms = DefaultConfig.MaxExtraAtoms
	}
	if cfg.MaxTuplesPerRelation < 0 {
		cfg.MaxTuplesPerRelation = DefaultConfig.MaxTuplesPerRelation
	}
	if cfg.IntDomain <= 0 {
		cfg.IntDomain = DefaultConfig.IntDomain
	}
	rng := rand.New(rand.NewSource(seed))
	g := &generator{rng: rng, cfg: cfg}
	g.schema()
	g.program()
	sc := &Scenario{
		Seed:          seed,
		SchemaSource:  g.schemaSrc(),
		ProgramSource: g.programSrc(),
	}
	var err error
	sc.Schema, err = engine.ParseSchema(sc.SchemaSource)
	if err != nil {
		return nil, fmt.Errorf("generated schema invalid: %w\n%s", err, sc.SchemaSource)
	}
	sc.Program, err = datalog.ParseAndValidate(sc.ProgramSource, sc.Schema)
	if err != nil {
		return nil, fmt.Errorf("generated program invalid: %w\n%s", err, sc.ProgramSource)
	}
	sc.DB = g.database(sc.Schema)
	sc.kinds = make([][]kind, len(g.rels))
	for i, r := range g.rels {
		sc.kinds[i] = r.kinds
	}
	return sc, nil
}

// kind tags a column (and the variables bound to it) as integer- or
// string-valued, so generated comparisons and constants are well-typed.
type kind int

const (
	kindInt kind = iota
	kindStr
)

type relation struct {
	name  string
	kinds []kind // per column
}

type generator struct {
	rng  *rand.Rand
	cfg  Config
	rels []relation
	// allowCycles lets delta body atoms reference any relation (including
	// the head's own), producing recursive programs; otherwise delta
	// dependencies point strictly at earlier relations, guaranteeing an
	// acyclic program.
	allowCycles bool
	rules       []string
}

func (g *generator) schema() {
	n := 1 + g.rng.Intn(g.cfg.MaxRelations)
	for i := 0; i < n; i++ {
		arity := 1 + g.rng.Intn(g.cfg.MaxArity)
		kinds := make([]kind, arity)
		for c := range kinds {
			if g.rng.Intn(4) == 0 {
				kinds[c] = kindStr
			}
		}
		g.rels = append(g.rels, relation{name: fmt.Sprintf("R%d", i), kinds: kinds})
	}
	g.allowCycles = g.rng.Intn(2) == 0
}

func (g *generator) schemaSrc() string {
	var b strings.Builder
	for _, r := range g.rels {
		b.WriteString(r.name)
		b.WriteByte('(')
		for c := range r.kinds {
			if c > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "a%d", c)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// boundVar is one variable with the kind of the column that bound it.
type boundVar struct {
	name string
	k    kind
}

func (g *generator) program() {
	n := 1 + g.rng.Intn(g.cfg.MaxRules)
	for i := 0; i < n; i++ {
		g.rules = append(g.rules, g.rule())
	}
}

// rule emits one valid delta rule: head ∆_Rh(X), body Rh(X) plus random
// base/delta atoms and an optional comparison, all type-consistent.
func (g *generator) rule() string {
	h := g.rng.Intn(len(g.rels))
	head := g.rels[h]

	nextVar := 0
	freshVar := func(k kind) boundVar {
		v := boundVar{name: fmt.Sprintf("v%d", nextVar), k: k}
		nextVar++
		return v
	}
	var bound []boundVar

	// Head/self terms: distinct fresh variables (Def. 3.1 requires the
	// body to contain Rh with exactly the head's term vector).
	headVars := make([]string, len(head.kinds))
	for c, k := range head.kinds {
		v := freshVar(k)
		bound = append(bound, v)
		headVars[c] = v.name
	}
	selfAtom := head.name + "(" + strings.Join(headVars, ", ") + ")"

	var atoms []string
	atoms = append(atoms, selfAtom)
	for extra := g.rng.Intn(g.cfg.MaxExtraAtoms + 1); extra > 0; extra-- {
		delta := g.rng.Intn(5) < 2
		var bi int
		if delta && !g.allowCycles {
			if h == 0 {
				delta = false // no earlier relation to depend on
			} else {
				bi = g.rng.Intn(h)
			}
		}
		if !delta || g.allowCycles {
			bi = g.rng.Intn(len(g.rels))
		}
		rel := g.rels[bi]
		terms := make([]string, len(rel.kinds))
		for c, k := range rel.kinds {
			switch g.rng.Intn(10) {
			case 0, 1: // constant of the column's kind
				terms[c] = g.constant(k)
			case 2, 3, 4: // fresh variable
				v := freshVar(k)
				bound = append(bound, v)
				terms[c] = v.name
			default: // reuse a bound variable of the same kind (join!)
				if v, ok := g.pickVar(bound, k); ok {
					terms[c] = v
				} else {
					v := freshVar(k)
					bound = append(bound, v)
					terms[c] = v.name
				}
			}
		}
		name := rel.name
		if delta {
			name = "Delta_" + name
		}
		atoms = append(atoms, name+"("+strings.Join(terms, ", ")+")")
	}

	// Optional comparison on an int variable (comparisons must reference
	// bound variables only).
	if g.rng.Intn(5) < 2 {
		if v, ok := g.pickVar(bound, kindInt); ok {
			ops := []string{"<", "<=", ">", ">=", "!=", "="}
			op := ops[g.rng.Intn(len(ops))]
			atoms = append(atoms, fmt.Sprintf("%s %s %d", v, op, g.rng.Intn(g.cfg.IntDomain)))
		}
	}

	return fmt.Sprintf("Delta_%s(%s) :- %s.", head.name, strings.Join(headVars, ", "), strings.Join(atoms, ", "))
}

func (g *generator) pickVar(bound []boundVar, k kind) (string, bool) {
	var cands []string
	for _, v := range bound {
		if v.k == k {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	return cands[g.rng.Intn(len(cands))], true
}

func (g *generator) constant(k kind) string {
	if k == kindStr {
		return "'" + string(rune('a'+g.rng.Intn(3))) + "'"
	}
	return fmt.Sprintf("%d", g.rng.Intn(g.cfg.IntDomain))
}

func (g *generator) programSrc() string {
	return strings.Join(g.rules, "\n") + "\n"
}

func (g *generator) database(schema *engine.Schema) *engine.Database {
	db := engine.NewDatabase(schema)
	for ri, rs := range schema.Relations {
		kinds := g.rels[ri].kinds
		n := g.rng.Intn(g.cfg.MaxTuplesPerRelation + 1)
		for i := 0; i < n; i++ {
			vals := make([]engine.Value, rs.Arity())
			for c := range vals {
				if kinds[c] == kindStr {
					vals[c] = engine.Str(string(rune('a' + g.rng.Intn(3))))
				} else {
					vals[c] = engine.Int(g.rng.Intn(g.cfg.IntDomain))
				}
			}
			db.MustInsert(rs.Name, vals...) // duplicates dedup to the stored tuple
		}
	}
	return db
}
