package gen

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
)

// quickScenarios is the fixed-seed CI budget: every run checks the same
// seeds 1..quickScenarios, so a red CI reproduces locally from the seed in
// the failure message. CI runs this under -race (see .github/workflows).
const quickScenarios = 500

// checkScenario asserts the paper-proved invariants on one scenario:
//
//  1. Stability: each semantics' repaired database is stable (Def. 3.12).
//  2. Deletion-only: the stabilizing set ⊆ input tuples, the repaired
//     instance ⊆ input instance, and sizes reconcile exactly.
//  3. Determinism: sequential, parallel (4 workers), sharded (4 shards,
//     no size floor), prepared, and forked-input execution produce
//     byte-identical results.
//  4. Containments (Prop. 3.20): Stage ⊆ End, Step ⊆ End, and — when the
//     solver proved minimality — |Ind| ≤ |Step|, |Ind| ≤ |Stage|.
func checkScenario(t *testing.T, sc *Scenario) {
	t.Helper()
	prep, err := datalog.Prepare(sc.Program, sc.Schema)
	if err != nil {
		t.Fatalf("seed %d: prepare: %v", sc.Seed, err)
	}
	snap := sc.DB.Freeze()

	results := make(map[core.Semantics]*core.Result, len(core.AllSemantics))
	for _, sem := range core.AllSemantics {
		res, repaired, err := core.Run(sc.DB, sc.Program, sem)
		if err != nil {
			t.Fatalf("seed %d: %s: %v", sc.Seed, sem, err)
		}
		results[sem] = res

		// (1) Stability of the repaired instance.
		stable, err := core.CheckStable(repaired, sc.Program)
		if err != nil {
			t.Fatalf("seed %d: %s stability check: %v", sc.Seed, sem, err)
		}
		if !stable {
			t.Fatalf("seed %d: %s repaired database is not stable\nprogram:\n%s", sc.Seed, sem, sc.ProgramSource)
		}

		// (2) Deletion-only.
		for _, tp := range res.Deleted {
			if sc.DB.Lookup(tp.Key()) == nil {
				t.Fatalf("seed %d: %s deleted %s, which is not a live input tuple", sc.Seed, sem, tp.Key())
			}
		}
		live := 0
		for _, rs := range sc.Schema.Relations {
			repaired.Relation(rs.Name).Scan(func(tp *engine.Tuple) bool {
				live++
				if sc.DB.Lookup(tp.Key()) == nil {
					t.Fatalf("seed %d: %s repaired instance contains %s, absent from the input", sc.Seed, sem, tp.Key())
				}
				return true
			})
		}
		if want := sc.DB.TotalTuples() - res.Size(); live != want {
			t.Fatalf("seed %d: %s repaired instance has %d tuples, want %d (input %d - deleted %d)",
				sc.Seed, sem, live, want, sc.DB.TotalTuples(), res.Size())
		}

		// (3) Determinism across execution strategies.
		seqKeys := fmt.Sprintf("%v", res.Keys())
		strategies := []struct {
			name string
			run  func() (*core.Result, error)
		}{
			{"parallel", func() (*core.Result, error) {
				r, _, err := core.RunWith(sc.DB, sc.Program, sem, core.Options{Parallelism: 4})
				return r, err
			}},
			{"sharded", func() (*core.Result, error) {
				// ShardMinTuples: -1 removes the size floor so generated
				// scenarios (small by construction) actually shard whenever
				// the co-partitioning analysis allows it.
				r, _, err := core.RunWith(sc.DB, sc.Program, sem, core.Options{Parallelism: 4, ShardMinTuples: -1})
				return r, err
			}},
			{"prepared", func() (*core.Result, error) {
				r, _, err := core.RunWith(sc.DB, sc.Program, sem, core.Options{Prepared: prep})
				return r, err
			}},
			{"forked", func() (*core.Result, error) {
				r, _, err := core.Run(snap.Fork(), sc.Program, sem)
				return r, err
			}},
		}
		for _, st := range strategies {
			r, err := st.run()
			if err != nil {
				t.Fatalf("seed %d: %s/%s: %v", sc.Seed, sem, st.name, err)
			}
			if got := fmt.Sprintf("%v", r.Keys()); got != seqKeys {
				t.Fatalf("seed %d: %s/%s nondeterministic:\n sequential: %s\n %s: %s\nprogram:\n%s",
					sc.Seed, sem, st.name, seqKeys, st.name, got, sc.ProgramSource)
			}
		}
	}

	// (4) Always-true containments.
	cont := core.CheckContainment(results)
	if !cont.StageInEnd {
		t.Fatalf("seed %d: Stage ⊄ End\nprogram:\n%s", sc.Seed, sc.ProgramSource)
	}
	if !cont.StepInEnd {
		t.Fatalf("seed %d: Step ⊄ End\nprogram:\n%s", sc.Seed, sc.ProgramSource)
	}
	if ind := results[core.SemIndependent]; ind.Optimal {
		if !cont.IndLeStep || !cont.IndLeStage {
			t.Fatalf("seed %d: optimal |Ind|=%d exceeds |Step|=%d or |Stage|=%d\nprogram:\n%s",
				sc.Seed, ind.Size(), results[core.SemStep].Size(), results[core.SemStage].Size(), sc.ProgramSource)
		}
	}

	// (5) Warm-delete byte-identity: a deterministic mixed batch — three
	// spread-out rows deleted, one of them re-inserted (a resurrection
	// with a fresh tuple identity) — is applied to the frozen scenario,
	// and every semantics' warm run (previous result + ApplyInfo hints)
	// must be byte-identical (exact Seq-ordered keys — warm and cold
	// share the post-batch lineage) to a cold run. End semantics takes
	// the over-delete/re-derive pipeline; the others take the seeded
	// change probe or fall back, all without changing the answer.
	var rows []engine.Row
	for _, rs := range sc.Schema.Relations {
		sc.DB.Relation(rs.Name).Scan(func(tp *engine.Tuple) bool {
			rows = append(rows, engine.Row{Rel: tp.Rel, Vals: tp.Vals})
			return true
		})
	}
	if len(rows) == 0 {
		return
	}
	pick := map[int]bool{0: true, len(rows) / 2: true, len(rows) - 1: true}
	var deletes []engine.Row
	for i := range rows {
		if pick[i] {
			deletes = append(deletes, rows[i])
		}
	}
	next, info, err := snap.Apply([]engine.Row{rows[0]}, deletes)
	if err != nil {
		t.Fatalf("seed %d: warm-delete batch: %v", sc.Seed, err)
	}
	for _, sem := range core.AllSemantics {
		prev, _, err := core.RunWith(snap.Fork(), sc.Program, sem, core.Options{Prepared: prep})
		if err != nil {
			t.Fatalf("seed %d: warm-delete prev %s: %v", sc.Seed, sem, err)
		}
		warm := &core.WarmStart{
			PrevResult:  prev,
			ChangedRels: info.Changed,
			Inserted:    info.InsertedTuples,
			Deleted:     info.DeletedTuples,
			InsertOnly:  info.InsertOnly(),
		}
		cold, _, err := core.RunWith(next.Fork(), sc.Program, sem, core.Options{Prepared: prep})
		if err != nil {
			t.Fatalf("seed %d: warm-delete cold %s: %v", sc.Seed, sem, err)
		}
		got, repaired, err := core.RunWith(next.Fork(), sc.Program, sem, core.Options{Prepared: prep, Warm: warm})
		if err != nil {
			t.Fatalf("seed %d: warm-delete warm %s: %v", sc.Seed, sem, err)
		}
		if gotKeys, wantKeys := fmt.Sprintf("%v", got.Keys()), fmt.Sprintf("%v", cold.Keys()); gotKeys != wantKeys {
			t.Fatalf("seed %d: %s warm-delete %s != cold %s\nprogram:\n%s",
				sc.Seed, sem, gotKeys, wantKeys, sc.ProgramSource)
		}
		if stable, err := core.CheckStableP(repaired, prep); err != nil || !stable {
			t.Fatalf("seed %d: %s warm-delete repaired fork not stable (err=%v)", sc.Seed, sem, err)
		}
	}
}

// TestGeneratedInvariantsQuick is the fixed-seed CI mode: 500 scenarios,
// every paper invariant, each scenario an independent subtest so failures
// name their seed.
func TestGeneratedInvariantsQuick(t *testing.T) {
	for seed := int64(1); seed <= quickScenarios; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkScenario(t, Generate(seed))
		})
	}
}

// soakBase makes `go test -count=N` cover disjoint seed blocks: each run
// of the soak test claims the next block, so repeated runs explore new
// scenarios instead of re-checking the same ones.
var soakBase atomic.Int64

// TestGeneratedInvariantsSoak scales beyond CI: set GEN_SOAK to a scenario
// count (and optionally -count to multiply runs over fresh seed blocks):
//
//	GEN_SOAK=5000 go test -race -run Soak -count=4 ./internal/gen
func TestGeneratedInvariantsSoak(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("GEN_SOAK"))
	if n <= 0 {
		t.Skip("set GEN_SOAK=<scenarios> to run the soak suite")
	}
	base := soakBase.Add(int64(n)) - int64(n)
	// Soak seeds live far above the quick block so the two modes never
	// overlap.
	const soakOffset = 1 << 20
	for i := 0; i < n; i++ {
		seed := soakOffset + base + int64(i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkScenario(t, Generate(seed))
		})
	}
}

// TestGeneratorDeterminism: the same seed yields the same scenario.
func TestGeneratorDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.SchemaSource != b.SchemaSource || a.ProgramSource != b.ProgramSource {
			t.Fatalf("seed %d: generator nondeterministic", seed)
		}
		if a.DB.TotalTuples() != b.DB.TotalTuples() {
			t.Fatalf("seed %d: database nondeterministic", seed)
		}
	}
}

// TestGeneratorCoversBothShapes: the seed space must exercise recursive
// and non-recursive programs, and non-trivial databases.
func TestGeneratorCoversBothShapes(t *testing.T) {
	recursive, acyclic, nonEmpty, firing := 0, 0, 0, 0
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(seed)
		if sc.Program.Recursive {
			recursive++
		} else {
			acyclic++
		}
		if sc.DB.TotalTuples() > 0 {
			nonEmpty++
		}
		if stable, _ := core.CheckStable(sc.DB, sc.Program); !stable {
			firing++
		}
	}
	if recursive == 0 || acyclic == 0 {
		t.Errorf("shape coverage: %d recursive, %d acyclic — want both", recursive, acyclic)
	}
	if nonEmpty < 150 {
		t.Errorf("only %d/200 scenarios have tuples", nonEmpty)
	}
	// Scenarios where no rule fires are legal but boring; most seeds must
	// produce actual repair work.
	if firing < 50 {
		t.Errorf("only %d/200 scenarios are unstable (have repair work)", firing)
	}
}

// TestGenerateWithPartialConfig: unspecified bounds default instead of
// panicking inside the generator.
func TestGenerateWithPartialConfig(t *testing.T) {
	sc, err := GenerateWith(1, Config{MaxRelations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Program == nil || sc.DB == nil {
		t.Fatal("partial config produced an incomplete scenario")
	}
	if _, err := GenerateWith(2, Config{MaxRules: 1, MaxExtraAtoms: 0, MaxTuplesPerRelation: 0}); err != nil {
		t.Fatal(err)
	}
}
