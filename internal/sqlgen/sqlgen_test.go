package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/programs"
)

func runningExample(t *testing.T) (*datalog.Program, *engine.Schema) {
	t.Helper()
	s := programs.RunningExampleSchema()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestSchemaDDL(t *testing.T) {
	_, s := runningExample(t)
	ddl := SchemaDDL(s)
	for _, want := range []string{
		"CREATE TABLE grant (",
		"CREATE TABLE delta_grant (",
		"CREATE TABLE authgrant (",
		"CREATE TABLE delta_cite (",
		"PRIMARY KEY (gid, name)",
		"PRIMARY KEY (citing, cited)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
	// One base + one delta table per relation.
	if got := strings.Count(ddl, "CREATE TABLE"); got != 2*len(s.Relations) {
		t.Errorf("CREATE TABLE count = %d, want %d", got, 2*len(s.Relations))
	}
}

func TestRuleQueryConditionRule(t *testing.T) {
	p, s := runningExample(t)
	q, err := RuleQuery(p.Rules[0], s) // ∆Grant(g, n) :- Grant(g, n), n = 'ERC'.
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"INSERT INTO delta_grant (gid, name)",
		"SELECT DISTINCT t0.gid, t0.name",
		"FROM grant t0",
		"= 'ERC'",
		"NOT EXISTS (SELECT 1 FROM delta_grant d",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("query missing %q:\n%s", want, q)
		}
	}
}

func TestRuleQueryJoinRule(t *testing.T) {
	p, s := runningExample(t)
	q, err := RuleQuery(p.Rules[1], s) // ∆Author :- Author, AuthGrant, ∆Grant.
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"INSERT INTO delta_author (aid, name)",
		"FROM author t0, authgrant t1, delta_grant t2",
		"t1.aid = t0.aid", // join on a
		"t2.gid = t1.gid", // join on g through the delta table
	} {
		if !strings.Contains(q, want) {
			t.Errorf("query missing %q:\n%s", want, q)
		}
	}
}

func TestRuleQueryComparisonsAndConstants(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("N", "n", "v", "w")
	p, err := datalog.ParseAndValidate(
		`Delta_N(x, y) :- N(x, y), x < 10, y != 'bad\'quote'.`, s)
	if err != nil {
		t.Fatal(err)
	}
	q, err := RuleQuery(p.Rules[0], s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, "t0.v < 10") {
		t.Errorf("comparison missing:\n%s", q)
	}
	if !strings.Contains(q, "t0.w <> 'bad''quote'") {
		t.Errorf("escaped inequality missing:\n%s", q)
	}
}

func TestProgramScript(t *testing.T) {
	p, s := runningExample(t)
	script, err := ProgramScript(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(script, "INSERT INTO delta_"); got != len(p.Rules) {
		t.Errorf("INSERT count = %d, want %d", got, len(p.Rules))
	}
	// One sync DELETE per delta relation.
	if got := strings.Count(script, "DELETE FROM"); got != len(p.DeltaRelations()) {
		t.Errorf("sync DELETE count = %d, want %d", got, len(p.DeltaRelations()))
	}
	if !strings.Contains(script, "-- rule 0:") {
		t.Error("script should carry rule comments")
	}
}

func TestTriggerDDLPostgres(t *testing.T) {
	p, s := runningExample(t)
	ddl, err := TriggerDDL(p, s, Postgres)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CREATE FUNCTION trg_rule1_author_fn() RETURNS trigger",
		"CREATE TRIGGER trg_rule1_author AFTER DELETE ON grant",
		"FOR EACH ROW EXECUTE FUNCTION",
		"OLD.gid", // the deleted grant row binds the delta atom
		"-- rule 0 is an initial statement",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("Postgres DDL missing %q:\n%s", want, ddl)
		}
	}
	// Rules 1-4 are triggers (one delta atom each); rule 0 is a comment.
	if got := strings.Count(ddl, "CREATE TRIGGER"); got != 4 {
		t.Errorf("trigger count = %d, want 4", got)
	}
}

func TestTriggerDDLMySQL(t *testing.T) {
	p, s := runningExample(t)
	ddl, err := TriggerDDL(p, s, MySQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"DELIMITER //",
		"CREATE TRIGGER trg_rule2_pub AFTER DELETE ON author",
		"FOR EACH ROW",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("MySQL DDL missing %q:\n%s", want, ddl)
		}
	}
	if strings.Contains(ddl, "CREATE FUNCTION") {
		t.Error("MySQL triggers must not use plpgsql functions")
	}
}

func TestTriggerDDLRejectsMultiDelta(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	s.MustAddRelation("S", "s", "a")
	s.MustAddRelation("T", "t", "a")
	p, err := datalog.ParseAndValidate(
		"Delta_R(x) :- R(x), Delta_S(x), Delta_T(x).", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TriggerDDL(p, s, Postgres); err == nil {
		t.Fatal("multi-delta rule should be rejected")
	}
}

func TestRuleQueryErrors(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	raw := datalog.MustParse("Delta_R(x) :- R(x).")
	if _, err := RuleQuery(raw.Rules[0], s); err == nil {
		t.Fatal("unvalidated rule should be rejected")
	}
	// Unknown relation in schema lookup.
	other := engine.NewSchema()
	other.MustAddRelation("Z", "z", "a")
	p, err := datalog.ParseAndValidate("Delta_R(x) :- R(x).", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RuleQuery(p.Rules[0], other); err == nil {
		t.Fatal("schema without the rule's relation should be rejected")
	}
	if _, err := ProgramScript(p, other); err == nil {
		t.Fatal("ProgramScript should propagate rule errors")
	}
}

func TestDialectString(t *testing.T) {
	if Postgres.String() != "postgresql" || MySQL.String() != "mysql" {
		t.Fatal("dialect names wrong")
	}
	if Dialect(9).String() == "" {
		t.Fatal("unknown dialect should render")
	}
}

func TestTriggerDDLForMASPrograms(t *testing.T) {
	// Every paper trigger program (3, 4, 5, 8, 20) must render in both
	// dialects.
	ds := masDataset()
	for _, n := range []int{3, 4, 5, 8, 20} {
		p, err := programs.MAS(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []Dialect{Postgres, MySQL} {
			if _, err := TriggerDDL(p, masSchema(), d); err != nil {
				t.Errorf("program %d %v: %v", n, d, err)
			}
		}
	}
}
