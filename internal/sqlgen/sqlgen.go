// Package sqlgen renders delta programs as SQL artifacts, mirroring the
// paper's own implementation strategy (§6: "Delta rules are implemented as
// SQL queries and delta relations are auxiliary relations in the
// database"). It produces:
//
//   - schema DDL: one base table and one delta_<name> table per relation;
//   - per-rule evaluation queries: INSERT INTO delta_x SELECT ... joins;
//   - a full fixpoint evaluation script (one derivation round, to be looped
//     by the host until no rows are inserted);
//   - AFTER DELETE trigger DDL in PostgreSQL and MySQL dialects for the
//     trigger-expressible subset (at most one delta body atom per rule).
//
// The generated SQL targets a live RDBMS; this repository's own executors
// never use it — it exists so a downstream user can port a repair program
// to their production database, and so the trigger comparison experiment
// has a concrete artifact to show.
package sqlgen

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Dialect selects the SQL flavor for dialect-sensitive artifacts.
type Dialect int

// Supported dialects.
const (
	Postgres Dialect = iota
	MySQL
)

// String names the dialect.
func (d Dialect) String() string {
	switch d {
	case Postgres:
		return "postgresql"
	case MySQL:
		return "mysql"
	default:
		return fmt.Sprintf("Dialect(%d)", int(d))
	}
}

// ident renders a lowercase SQL identifier.
func ident(name string) string { return strings.ToLower(name) }

// deltaTable names the auxiliary delta relation for a base relation.
func deltaTable(rel string) string { return "delta_" + ident(rel) }

// sqlValue renders a constant as a SQL literal.
func sqlValue(v engine.Value) string {
	if v.Kind == engine.KindString {
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	return v.String()
}

// sqlOp renders a comparison operator.
func sqlOp(op datalog.CompOp) string {
	if op == datalog.OpNEQ {
		return "<>"
	}
	return op.String()
}

// SchemaDDL renders CREATE TABLE statements for every base relation and
// its delta twin. All columns are typed TEXT/BIGINT-agnostically as the
// host database prefers; here we emit portable generic types by sampling
// nothing and declaring every column as TEXT — callers with typed schemas
// can post-process. A composite primary key over all columns enforces set
// semantics.
func SchemaDDL(s *engine.Schema) string {
	var b strings.Builder
	for _, rs := range s.Relations {
		for _, table := range []string{ident(rs.Name), deltaTable(rs.Name)} {
			fmt.Fprintf(&b, "CREATE TABLE %s (\n", table)
			for _, a := range rs.Attrs {
				fmt.Fprintf(&b, "  %s TEXT NOT NULL,\n", ident(a))
			}
			cols := make([]string, len(rs.Attrs))
			for i, a := range rs.Attrs {
				cols[i] = ident(a)
			}
			fmt.Fprintf(&b, "  PRIMARY KEY (%s)\n);\n\n", strings.Join(cols, ", "))
		}
	}
	return b.String()
}

// atomBinding resolves rule variables and constants to SQL column
// references for one rule.
type atomBinding struct {
	alias string // t0, t1, ...
	table string
	atom  datalog.Atom
}

// RuleQuery renders rule r as the derivation query of one evaluation round:
//
//	INSERT INTO delta_head (...)
//	SELECT DISTINCT t0.c1, ... FROM base t0, ... , delta_x tk
//	WHERE <joins and comparisons>
//	AND NOT EXISTS (SELECT 1 FROM delta_head d WHERE d.c1 = t0.c1 AND ...)
//
// following the paper's implementation of delta rules as SQL queries.
func RuleQuery(r *datalog.Rule, s *engine.Schema) (string, error) {
	if r.SelfIdx < 0 {
		return "", fmt.Errorf("sqlgen: rule %s not validated", r.Head)
	}
	headSchema := s.Relation(r.Head.Rel)
	if headSchema == nil {
		return "", fmt.Errorf("sqlgen: unknown head relation %q", r.Head.Rel)
	}

	bindings := make([]atomBinding, len(r.Body))
	for i, a := range r.Body {
		table := ident(a.Rel)
		if a.Delta {
			table = deltaTable(a.Rel)
		}
		bindings[i] = atomBinding{alias: fmt.Sprintf("t%d", i), table: table, atom: a}
	}

	// First column reference per variable, plus accumulated conditions.
	varRef := make(map[string]string)
	var conds []string
	for i, a := range r.Body {
		rs := s.Relation(a.Rel)
		if rs == nil {
			return "", fmt.Errorf("sqlgen: unknown relation %q", a.Rel)
		}
		for col, term := range a.Terms {
			ref := fmt.Sprintf("%s.%s", bindings[i].alias, ident(rs.Attrs[col]))
			if !term.IsVar() {
				conds = append(conds, fmt.Sprintf("%s = %s", ref, sqlValue(term.Const)))
				continue
			}
			if prev, seen := varRef[term.Var]; seen {
				conds = append(conds, fmt.Sprintf("%s = %s", ref, prev))
			} else {
				varRef[term.Var] = ref
			}
		}
	}
	termSQL := func(t datalog.Term) (string, error) {
		if !t.IsVar() {
			return sqlValue(t.Const), nil
		}
		ref, ok := varRef[t.Var]
		if !ok {
			return "", fmt.Errorf("sqlgen: unbound variable %s", t.Var)
		}
		return ref, nil
	}
	for _, c := range r.Comps {
		l, err := termSQL(c.Left)
		if err != nil {
			return "", err
		}
		rhs, err := termSQL(c.Right)
		if err != nil {
			return "", err
		}
		conds = append(conds, fmt.Sprintf("%s %s %s", l, sqlOp(c.Op), rhs))
	}

	// Projection: the self atom's columns in schema order.
	self := bindings[r.SelfIdx]
	proj := make([]string, headSchema.Arity())
	notExists := make([]string, headSchema.Arity())
	insertCols := make([]string, headSchema.Arity())
	for col, a := range headSchema.Attrs {
		proj[col] = fmt.Sprintf("%s.%s", self.alias, ident(a))
		notExists[col] = fmt.Sprintf("d.%s = %s", ident(a), proj[col])
		insertCols[col] = ident(a)
	}

	var from []string
	for _, bnd := range bindings {
		from = append(from, fmt.Sprintf("%s %s", bnd.table, bnd.alias))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s (%s)\n", deltaTable(r.Head.Rel), strings.Join(insertCols, ", "))
	fmt.Fprintf(&b, "SELECT DISTINCT %s\nFROM %s\n", strings.Join(proj, ", "), strings.Join(from, ", "))
	conds = append(conds, fmt.Sprintf("NOT EXISTS (SELECT 1 FROM %s d WHERE %s)",
		deltaTable(r.Head.Rel), strings.Join(notExists, " AND ")))
	fmt.Fprintf(&b, "WHERE %s;", strings.Join(conds, "\n  AND "))
	return b.String(), nil
}

// deleteSync renders the statement removing derived tuples from the base
// relation (the R_i ← R_i \ ∆_i update).
func deleteSync(rel string, s *engine.Schema) string {
	rs := s.Relation(rel)
	conds := make([]string, rs.Arity())
	for col, a := range rs.Attrs {
		conds[col] = fmt.Sprintf("d.%s = %s.%s", ident(a), ident(rel), ident(a))
	}
	return fmt.Sprintf("DELETE FROM %s WHERE EXISTS (SELECT 1 FROM %s d WHERE %s);",
		ident(rel), deltaTable(rel), strings.Join(conds, " AND "))
}

// ProgramScript renders one full evaluation round of the program: every
// rule's derivation query followed by the base-relation sync deletes for
// end/stage-style evaluation. The host loops the script until no INSERT
// adds rows (the fixpoint).
func ProgramScript(p *datalog.Program, s *engine.Schema) (string, error) {
	var b strings.Builder
	b.WriteString("-- One derivation round; loop until no INSERT affects rows.\n")
	b.WriteString("-- Generated by deltarepair/sqlgen.\n\n")
	for i, r := range p.Rules {
		q, err := RuleQuery(r, s)
		if err != nil {
			return "", fmt.Errorf("rule %d: %w", i, err)
		}
		fmt.Fprintf(&b, "-- rule %d: %s\n%s\n\n", i, r.String(), q)
	}
	b.WriteString("-- Sync base relations (stage/end update step):\n")
	for _, rel := range p.DeltaRelations() {
		b.WriteString(deleteSync(rel, s))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// TriggerDDL renders AFTER DELETE triggers for the trigger-expressible
// subset of the program: rules with no delta body atom become comments
// (they are the initial DELETE statements), rules with exactly one delta
// body atom become row-level triggers whose deleted row binds the delta
// atom. Rules with several delta atoms are rejected, matching the paper's
// "after delete, delete" trigger subset.
func TriggerDDL(p *datalog.Program, s *engine.Schema, d Dialect) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s AFTER DELETE triggers generated by deltarepair/sqlgen.\n\n", d)
	for i, r := range p.Rules {
		deltaIdx := -1
		for bi, a := range r.Body {
			if a.Delta {
				if deltaIdx >= 0 {
					return "", fmt.Errorf("sqlgen: rule %d has multiple delta atoms; not trigger-expressible", i)
				}
				deltaIdx = bi
			}
		}
		if deltaIdx < 0 {
			stmt, err := initialDelete(r, s)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "-- rule %d is an initial statement, run once to start the repair:\n-- %s\n\n", i, stmt)
			continue
		}
		trig, err := triggerFor(r, i, deltaIdx, s, d)
		if err != nil {
			return "", err
		}
		b.WriteString(trig)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// initialDelete renders a no-delta rule as a plain DELETE statement.
func initialDelete(r *datalog.Rule, s *engine.Schema) (string, error) {
	// DELETE FROM head WHERE EXISTS (SELECT 1 FROM <other atoms> WHERE ...)
	// For the single-atom case the conditions inline directly.
	q, err := RuleQuery(r, s)
	if err != nil {
		return "", err
	}
	// Present the derivation query; the host runs it then syncs.
	return strings.ReplaceAll(q, "\n", " "), nil
}

// triggerFor renders one AFTER DELETE trigger. The deleted row (OLD) binds
// the rule's delta atom; the trigger deletes matching head tuples, which
// recursively fires downstream triggers — the cascade semantics of §6.
func triggerFor(r *datalog.Rule, idx, deltaIdx int, s *engine.Schema, d Dialect) (string, error) {
	eventRel := r.Body[deltaIdx].Rel
	eventSchema := s.Relation(eventRel)
	headSchema := s.Relation(r.Head.Rel)
	if eventSchema == nil || headSchema == nil {
		return "", fmt.Errorf("sqlgen: unknown relation in rule %d", idx)
	}

	// Bind variables: delta atom terms map to OLD.<attr>; other atoms get
	// aliases as in RuleQuery, except the self atom which is the DELETE
	// target and binds to the head table directly.
	varRef := make(map[string]string)
	var conds []string
	aliases := make([]string, len(r.Body))
	var from []string
	for i, a := range r.Body {
		rs := s.Relation(a.Rel)
		if rs == nil {
			return "", fmt.Errorf("sqlgen: unknown relation %q", a.Rel)
		}
		switch {
		case i == deltaIdx:
			aliases[i] = "OLD"
		case i == r.SelfIdx:
			aliases[i] = ident(r.Head.Rel)
		default:
			aliases[i] = fmt.Sprintf("t%d", i)
			from = append(from, fmt.Sprintf("%s t%d", ident(a.Rel), i))
		}
		for col, term := range a.Terms {
			ref := fmt.Sprintf("%s.%s", aliases[i], ident(rs.Attrs[col]))
			if !term.IsVar() {
				conds = append(conds, fmt.Sprintf("%s = %s", ref, sqlValue(term.Const)))
				continue
			}
			if prev, seen := varRef[term.Var]; seen {
				conds = append(conds, fmt.Sprintf("%s = %s", ref, prev))
			} else {
				varRef[term.Var] = ref
			}
		}
	}
	for _, c := range r.Comps {
		l, r2 := "", ""
		if c.Left.IsVar() {
			l = varRef[c.Left.Var]
		} else {
			l = sqlValue(c.Left.Const)
		}
		if c.Right.IsVar() {
			r2 = varRef[c.Right.Var]
		} else {
			r2 = sqlValue(c.Right.Const)
		}
		conds = append(conds, fmt.Sprintf("%s %s %s", l, sqlOp(c.Op), r2))
	}

	where := strings.Join(conds, "\n      AND ")
	deleteStmt := fmt.Sprintf("DELETE FROM %s", ident(r.Head.Rel))
	if len(from) > 0 {
		deleteStmt += fmt.Sprintf(" WHERE EXISTS (SELECT 1 FROM %s WHERE %s)", strings.Join(from, ", "), where)
	} else {
		deleteStmt += fmt.Sprintf(" WHERE %s", where)
	}

	name := fmt.Sprintf("trg_rule%d_%s", idx, ident(r.Head.Rel))
	var b strings.Builder
	switch d {
	case Postgres:
		fmt.Fprintf(&b, "CREATE FUNCTION %s_fn() RETURNS trigger AS $$\nBEGIN\n  %s;\n  RETURN OLD;\nEND;\n$$ LANGUAGE plpgsql;\n", name, deleteStmt)
		fmt.Fprintf(&b, "CREATE TRIGGER %s AFTER DELETE ON %s\n  FOR EACH ROW EXECUTE FUNCTION %s_fn();\n", name, ident(eventRel), name)
	case MySQL:
		fmt.Fprintf(&b, "DELIMITER //\nCREATE TRIGGER %s AFTER DELETE ON %s\nFOR EACH ROW\nBEGIN\n  %s;\nEND//\nDELIMITER ;\n", name, ident(eventRel), deleteStmt)
	default:
		return "", fmt.Errorf("sqlgen: unknown dialect %v", d)
	}
	return b.String(), nil
}
