package sqlgen

import (
	"repro/internal/engine"
	"repro/internal/mas"
)

// masDataset and masSchema provide a tiny MAS instance for trigger tests.
func masDataset() *mas.Dataset {
	return mas.Generate(mas.Config{Scale: 0.005, Seed: 1})
}

func masSchema() *engine.Schema { return mas.Schema() }
