package deltarepair_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	deltarepair "repro"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/server"
)

// buildBenchWorkload models a production-shaped serving session: a
// 14-relation schema and a 24-rule program (cascades, multi-delta joins,
// and guard rules that plan but rarely fire) over a small hot instance, so
// per-request planning and execution-state setup — exactly what the
// session cache amortizes — are a realistic share of request cost.
func buildBenchWorkload(tb testing.TB) (*engine.Database, *datalog.Program) {
	tb.Helper()
	schemaSrc := `
Seed(gid, tag)
T1(aid, bid)
T2(aid, bid)
T3(aid, bid)
T4(aid, bid)
T5(aid, bid)
T6(aid, bid)
Link(xid, yid)
`
	progSrc := `
(c0) Delta_Seed(g, t) :- Seed(g, t), t = 'drop'.
(r1) Delta_T1(a, b) :- T1(a, b), Delta_Seed(a, t).
(r2) Delta_T2(a, b) :- T2(a, b), Delta_T1(z, a), a > 1000.
(r3) Delta_T3(a, b) :- T3(a, b), Delta_T2(z, a), a > 1000.
(r4) Delta_T4(a, b) :- T4(a, b), Delta_T3(z, a), a > 1000.
(r5) Delta_T5(a, b) :- T5(a, b), Delta_T4(z, a), a > 1000.
(r6) Delta_T6(a, b) :- T6(a, b), Delta_T5(z, a), a > 1000.
(x1) Delta_Link(x, y) :- Link(x, y), Delta_T2(z, x), Delta_T4(w, y).
(x2) Delta_Link(x, y) :- Link(x, y), Delta_T1(z, x), Delta_T6(w, y), x != y.
(g1) Delta_T6(a, b) :- T6(a, b), T5(b, c), T4(c, d), a > 1000.
(g2) Delta_T5(a, b) :- T5(a, b), T4(b, c), T3(c, d), b > 1000.
(g3) Delta_T4(a, b) :- T4(a, b), Link(a, c), T6(c, d), a > 1000.
(g4) Delta_T3(a, b) :- T3(a, b), Link(b, c), T5(c, d), b > 1000.
(g5) Delta_T2(a, b) :- T2(a, b), T1(b, c), T3(c, d), a > 1000.
(g6) Delta_Link(x, y) :- Link(x, y), T2(x, z), T4(z, w), T6(w, u), x > 1000.
(g7) Delta_T1(a, b) :- T1(a, b), Link(b, c), T6(c, d), T5(d, e), a > 1000.
(g8) Delta_Seed(g, t) :- Seed(g, t), T1(g, x), T2(x, y), T3(y, z), g > 1000.
(g9) Delta_T6(a, b) :- T6(a, b), T1(a, c), T2(c, d), T3(d, e), a > 1000.
(u1) Delta_T1(a, b) :- T1(a, b), T3(b, c), T5(c, d), a > 1000.
(u2) Delta_T2(a, b) :- T2(a, b), T4(b, c), T6(c, d), a > 1000.
(u3) Delta_T3(a, b) :- T3(a, b), T5(b, c), T1(c, d), a > 1000.
(u4) Delta_T4(a, b) :- T4(a, b), T6(b, c), T2(c, d), a > 1000.
(u5) Delta_T5(a, b) :- T5(a, b), T1(b, c), T3(c, d), a > 1000.
(u6) Delta_T6(a, b) :- T6(a, b), T2(b, c), T4(c, d), a > 1000.
`
	schema, err := engine.ParseSchema(schemaSrc)
	if err != nil {
		tb.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	db.MustInsert("Seed", engine.Int(1), engine.Str("drop"))
	db.MustInsert("Seed", engine.Int(2), engine.Str("keep"))
	for i := 0; i < 2; i++ {
		db.MustInsert("T1", engine.Int(1), engine.Int(10+i))
	}
	for r, rel := range []string{"T2", "T3", "T4", "T5", "T6"} {
		for i := 0; i < 2; i++ {
			db.MustInsert(rel, engine.Int(10+i), engine.Int(10+(i+r)%2))
		}
	}
	db.MustInsert("Link", engine.Int(10), engine.Int(11))
	db.MustInsert("Link", engine.Int(11), engine.Int(10))
	prog, err := datalog.ParseAndValidate(progSrc, schema)
	if err != nil {
		tb.Fatal(err)
	}
	return db, prog
}

// BenchmarkServerThroughput contrasts the serving hot path — cached
// session: Prepare once, Freeze once, fork per request behind admission
// control — against naive per-request Repair (re-plan + fork every call)
// at 1, 4, and 16 concurrent clients. ns/op is wall-clock per request
// across all clients, so 1/ns_per_op is the served request rate;
// scripts/bench.sh turns each cached/naive pair into a
// server_throughput/cached_vs_naive_cN speedup entry in the JSON
// snapshot.
func BenchmarkServerThroughput(b *testing.B) {
	db, prog := buildBenchWorkload(b)
	svcDB, svcProg := buildBenchWorkload(b)
	svc := server.New(server.Config{MaxInFlight: 32})
	if err := svc.Register("bench", svcDB.Schema, svcDB, svcProg); err != nil {
		b.Fatal(err)
	}
	if err := svc.Warm("bench"); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	// Freeze the naive leg's base once up front so both legs share the
	// CoW fork machinery and the comparison isolates what the session
	// cache actually saves: per-request planning (datalog.Prepare) and
	// execution-state pooling.
	db.Freeze()

	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("cached/c%d", clients), func(b *testing.B) {
			runClients(b, clients, func() error {
				_, _, err := svc.Repair(ctx, "bench", core.SemStage, server.RequestOptions{})
				return err
			})
		})
		b.Run(fmt.Sprintf("naive/c%d", clients), func(b *testing.B) {
			runClients(b, clients, func() error {
				_, _, err := deltarepair.Repair(db, prog, deltarepair.Stage)
				return err
			})
		})
	}
}

// runClients splits b.N requests across the given number of concurrent
// client goroutines and waits for all of them.
func runClients(b *testing.B, clients int, req func() error) {
	b.ReportAllocs()
	// Settle GC debt inherited from earlier benchmarks in the same
	// process so both legs start from comparable heaps.
	runtime.GC()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	per := b.N / clients
	extra := b.N % clients
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		n := per
		if c < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := req(); err != nil {
					errCh <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
}
