package deltarepair_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	deltarepair "repro"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/server/durability"
)

// buildBenchWorkload models a production-shaped serving session: a
// 14-relation schema and a 24-rule program (cascades, multi-delta joins,
// and guard rules that plan but rarely fire) over a small hot instance, so
// per-request planning and execution-state setup — exactly what the
// session cache amortizes — are a realistic share of request cost.
func buildBenchWorkload(tb testing.TB) (*engine.Database, *datalog.Program) {
	return buildScaledBenchWorkload(tb, 1)
}

// buildScaledBenchWorkload is buildBenchWorkload with the bulk relations
// (T1..T6, Link) holding scale× as many rows. The extra rows sit below
// every guard threshold, so the repair itself stays fixed while the base
// — and anything that costs O(base) — grows: exactly the shape that
// separates O(changes) incremental updates from O(database) rebuilds.
func buildScaledBenchWorkload(tb testing.TB, scale int) (*engine.Database, *datalog.Program) {
	tb.Helper()
	schemaSrc := `
Seed(gid, tag)
T1(aid, bid)
T2(aid, bid)
T3(aid, bid)
T4(aid, bid)
T5(aid, bid)
T6(aid, bid)
Link(xid, yid)
`
	progSrc := `
(c0) Delta_Seed(g, t) :- Seed(g, t), t = 'drop'.
(r1) Delta_T1(a, b) :- T1(a, b), Delta_Seed(a, t).
(r2) Delta_T2(a, b) :- T2(a, b), Delta_T1(z, a), a > 1000.
(r3) Delta_T3(a, b) :- T3(a, b), Delta_T2(z, a), a > 1000.
(r4) Delta_T4(a, b) :- T4(a, b), Delta_T3(z, a), a > 1000.
(r5) Delta_T5(a, b) :- T5(a, b), Delta_T4(z, a), a > 1000.
(r6) Delta_T6(a, b) :- T6(a, b), Delta_T5(z, a), a > 1000.
(x1) Delta_Link(x, y) :- Link(x, y), Delta_T2(z, x), Delta_T4(w, y).
(x2) Delta_Link(x, y) :- Link(x, y), Delta_T1(z, x), Delta_T6(w, y), x != y.
(g1) Delta_T6(a, b) :- T6(a, b), T5(b, c), T4(c, d), a > 1000.
(g2) Delta_T5(a, b) :- T5(a, b), T4(b, c), T3(c, d), b > 1000.
(g3) Delta_T4(a, b) :- T4(a, b), Link(a, c), T6(c, d), a > 1000.
(g4) Delta_T3(a, b) :- T3(a, b), Link(b, c), T5(c, d), b > 1000.
(g5) Delta_T2(a, b) :- T2(a, b), T1(b, c), T3(c, d), a > 1000.
(g6) Delta_Link(x, y) :- Link(x, y), T2(x, z), T4(z, w), T6(w, u), x > 1000.
(g7) Delta_T1(a, b) :- T1(a, b), Link(b, c), T6(c, d), T5(d, e), a > 1000.
(g8) Delta_Seed(g, t) :- Seed(g, t), T1(g, x), T2(x, y), T3(y, z), g > 1000.
(g9) Delta_T6(a, b) :- T6(a, b), T1(a, c), T2(c, d), T3(d, e), a > 1000.
(u1) Delta_T1(a, b) :- T1(a, b), T3(b, c), T5(c, d), a > 1000.
(u2) Delta_T2(a, b) :- T2(a, b), T4(b, c), T6(c, d), a > 1000.
(u3) Delta_T3(a, b) :- T3(a, b), T5(b, c), T1(c, d), a > 1000.
(u4) Delta_T4(a, b) :- T4(a, b), T6(b, c), T2(c, d), a > 1000.
(u5) Delta_T5(a, b) :- T5(a, b), T1(b, c), T3(c, d), a > 1000.
(u6) Delta_T6(a, b) :- T6(a, b), T2(b, c), T4(c, d), a > 1000.
`
	schema, err := engine.ParseSchema(schemaSrc)
	if err != nil {
		tb.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	db.MustInsert("Seed", engine.Int(1), engine.Str("drop"))
	db.MustInsert("Seed", engine.Int(2), engine.Str("keep"))
	for i := 0; i < 2; i++ {
		db.MustInsert("T1", engine.Int(1), engine.Int(10+i))
	}
	for r, rel := range []string{"T2", "T3", "T4", "T5", "T6"} {
		for i := 0; i < 2; i++ {
			db.MustInsert(rel, engine.Int(10+i), engine.Int(10+(i+r)%2))
		}
	}
	db.MustInsert("Link", engine.Int(10), engine.Int(11))
	db.MustInsert("Link", engine.Int(11), engine.Int(10))
	// Bulk rows beyond scale 1: ids 20.. keep clear of the hot 10/11 join
	// keys and the >1000 guards, adding base volume without repair work.
	for s := 1; s < scale; s++ {
		for _, rel := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "Link"} {
			for i := 0; i < 2; i++ {
				db.MustInsert(rel, engine.Int(20+2*s+i), engine.Int(20+2*s+(i+1)%2))
			}
		}
	}
	prog, err := datalog.ParseAndValidate(progSrc, schema)
	if err != nil {
		tb.Fatal(err)
	}
	return db, prog
}

// BenchmarkServerThroughput contrasts the serving hot path — cached
// session: Prepare once, Freeze once, fork per request behind admission
// control — against naive per-request Repair (re-plan + fork every call)
// at 1, 4, and 16 concurrent clients. ns/op is wall-clock per request
// across all clients, so 1/ns_per_op is the served request rate;
// scripts/bench.sh turns each cached/naive pair into a
// server_throughput/cached_vs_naive_cN speedup entry in the JSON
// snapshot.
func BenchmarkServerThroughput(b *testing.B) {
	db, prog := buildBenchWorkload(b)
	svcDB, svcProg := buildBenchWorkload(b)
	svc := server.New(server.Config{MaxInFlight: 32})
	if err := svc.Register("bench", svcDB.Schema, svcDB, svcProg); err != nil {
		b.Fatal(err)
	}
	if err := svc.Warm("bench"); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	// Freeze the naive leg's base once up front so both legs share the
	// CoW fork machinery and the comparison isolates what the session
	// cache actually saves: per-request planning (datalog.Prepare) and
	// execution-state pooling.
	db.Freeze()

	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("cached/c%d", clients), func(b *testing.B) {
			runClients(b, clients, func() error {
				_, _, err := svc.Repair(ctx, "bench", core.SemStage, server.RequestOptions{})
				return err
			})
		})
		b.Run(fmt.Sprintf("naive/c%d", clients), func(b *testing.B) {
			runClients(b, clients, func() error {
				_, _, err := deltarepair.Repair(db, prog, deltarepair.Stage)
				return err
			})
		})
	}
}

// BenchmarkSessionUpdate contrasts the two ways a serving system can
// follow base data that changes between requests:
//
//   - incremental: Service.Update applies a small delta to the live
//     session (new snapshot version, untouched relations share frozen
//     cores and warm indexes, prepared plans untouched), then repairs;
//   - reregister: what frozen sessions required before — evict the
//     session, rebuild the database from rows (re-intern everything),
//     re-register, and repair (re-prepare + re-freeze + cold indexes).
//
// The update_only legs isolate the Update call itself on a 1× and a 10×
// base: because cost is O(touched relations + changes), the 10× base —
// all growth in relations the delta never touches — should cost about
// the same (scripts/bench.sh records the ratio as
// scaling/update_cost_10x_base; ~1.0 is the O(changes) evidence).
func BenchmarkSessionUpdate(b *testing.B) {
	ctx := context.Background()
	// Each iteration i inserts Seed row (100+i%64) and deletes the row
	// inserted the previous iteration, so the session's size stays
	// bounded and every batch does real work (set semantics: the slot
	// re-inserted after a wrap was deleted 63 iterations earlier).
	seedRow := func(i int) []deltarepair.Row {
		return []deltarepair.Row{{Rel: "Seed", Vals: []engine.Value{engine.Int(100 + i%64), engine.Str("keep")}}}
	}

	b.Run("incremental", func(b *testing.B) {
		db, prog := buildScaledBenchWorkload(b, 1)
		svc := server.New(server.Config{})
		if err := svc.Register("inc", db.Schema, db, prog); err != nil {
			b.Fatal(err)
		}
		if err := svc.Warm("inc"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Update(ctx, "inc", seedRow(i), seedRow(i-1), server.RequestOptions{}); err != nil {
				b.Fatal(err)
			}
			if _, _, err := svc.Repair(ctx, "inc", core.SemStage, server.RequestOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("reregister", func(b *testing.B) {
		svc := server.New(server.Config{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The full cost of following one base change without mutable
			// sessions: rebuild the instance (with the changed row), evict,
			// re-register, re-warm, repair.
			db, prog := buildScaledBenchWorkload(b, 1)
			db.MustInsert("Seed", engine.Int(100+i%64), engine.Str("keep"))
			svc.Deregister("re")
			if err := svc.Register("re", db.Schema, db, prog); err != nil {
				b.Fatal(err)
			}
			if _, _, err := svc.Repair(ctx, "re", core.SemStage, server.RequestOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, leg := range []struct {
		name  string
		scale int
	}{{"update_only", 1}, {"update_only_10x", 10}} {
		b.Run(leg.name, func(b *testing.B) {
			db, prog := buildScaledBenchWorkload(b, leg.scale)
			svc := server.New(server.Config{})
			if err := svc.Register("u", db.Schema, db, prog); err != nil {
				b.Fatal(err)
			}
			if err := svc.Warm("u"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Update(ctx, "u", seedRow(i), seedRow(i-1), server.RequestOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeleteMaintenance measures what incremental delete
// maintenance buys on a delete-heavy update stream: every batch contains
// deletions (alternating between a fixpoint member — forcing the
// over-delete/re-derive pipeline to do real work — and plain base churn),
// and each version is repaired under end semantics.
//
//   - incremental: the previous version's result plus the batch's
//     ApplyInfo warm-start the run, so repair cost tracks the batch and
//     its join neighborhood;
//   - recompute: the same stream with the hints withheld — the full
//     seminaive fixpoint every delete-containing batch paid before.
//
// The base carries 150× bulk rows the stream never touches, the shape that
// separates O(changes) maintenance from O(database) recomputation;
// scripts/bench.sh records the pair as
// session_update/incremental_delete_vs_recompute and gates it in --check
// mode.
func BenchmarkDeleteMaintenance(b *testing.B) {
	// Seed(1,'drop') roots the whole cascade, so deleting it exercises
	// forced death + downward closure over the entire previous fixpoint;
	// re-inserting it next batch re-derives the cascade through the
	// insert-seeded continuation. The aux Seed rows are read-set churn
	// outside the fixpoint. Every batch deletes at least one live row,
	// and only the small Seed relation is ever touched — the update cost
	// itself stays O(changes) while the recompute leg pays the fixpoint
	// over the 150× base.
	rootRow := []deltarepair.Row{{Rel: "Seed", Vals: []engine.Value{engine.Int(1), engine.Str("drop")}}}
	auxRow := func(i int) []deltarepair.Row {
		if i < 0 {
			return nil
		}
		return []deltarepair.Row{{Rel: "Seed", Vals: []engine.Value{engine.Int(300 + i%64), engine.Str("keep")}}}
	}
	batch := func(i int) (inserts, deletes []deltarepair.Row) {
		if i%2 == 0 {
			return auxRow(i), append(append([]deltarepair.Row{}, rootRow...), auxRow(i-1)...)
		}
		return append(append([]deltarepair.Row{}, rootRow...), auxRow(i)...), auxRow(i - 1)
	}

	for _, leg := range []struct {
		name string
		warm bool
	}{{"incremental", true}, {"recompute", false}} {
		b.Run(leg.name, func(b *testing.B) {
			db, prog := buildScaledBenchWorkload(b, 150)
			prep, err := datalog.Prepare(prog, db.Schema)
			if err != nil {
				b.Fatal(err)
			}
			snap := db.Freeze()
			prev, _, err := core.RunWith(snap.Fork(), prog, core.SemEnd, core.Options{Prepared: prep})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inserts, deletes := batch(i)
				next, info, err := snap.Apply(inserts, deletes)
				if err != nil {
					b.Fatal(err)
				}
				opts := core.Options{Prepared: prep}
				if leg.warm {
					opts.Warm = &core.WarmStart{
						PrevResult:  prev,
						ChangedRels: info.Changed,
						Inserted:    info.InsertedTuples,
						Deleted:     info.DeletedTuples,
						InsertOnly:  info.InsertOnly(),
					}
				}
				res, _, err := core.RunWith(next.Fork(), prog, core.SemEnd, opts)
				if err != nil {
					b.Fatal(err)
				}
				snap, prev = next, res
			}
		})
	}
}

// runClients splits b.N requests across the given number of concurrent
// client goroutines and waits for all of them.
func runClients(b *testing.B, clients int, req func() error) {
	b.ReportAllocs()
	// Settle GC debt inherited from earlier benchmarks in the same
	// process so both legs start from comparable heaps.
	runtime.GC()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	per := b.N / clients
	extra := b.N % clients
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		n := per
		if c < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := req(); err != nil {
					errCh <- err
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
}

// BenchmarkWALAppend measures the durable-update overhead in isolation:
// encoding one update batch into a length-prefixed, checksummed WAL frame
// and appending it. The fsync leg is the default durability mode (every
// batch survives power loss) and is dominated by the disk flush; the
// nofsync leg (-fsync=false, survives process crash only) is the
// encode+write cost the WAL adds to Service.Update on the in-memory path.
func BenchmarkWALAppend(b *testing.B) {
	rec := &durability.Record{
		Version: 1,
		Inserts: []engine.Row{
			{Rel: "T1", Vals: []engine.Value{engine.Int(1), engine.Int(2)}},
			{Rel: "T2", Vals: []engine.Value{engine.Int(3), engine.Int(4)}},
		},
		Deletes: []engine.Row{
			{Rel: "T3", Vals: []engine.Value{engine.Int(5), engine.Int(6)}},
		},
	}
	run := func(b *testing.B, policy durability.FsyncPolicy) {
		log, err := durability.OpenLog(filepath.Join(b.TempDir(), "wal.log"), policy)
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Version = uint64(i + 1)
			if err := log.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("fsync", func(b *testing.B) { run(b, durability.FsyncAlways) })
	b.Run("nofsync", func(b *testing.B) { run(b, durability.FsyncNever) })
}
