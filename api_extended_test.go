package deltarepair_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	deltarepair "repro"
)

func TestPublicAPIEnumerateAndQuery(t *testing.T) {
	db, prog := apiDB(t)
	space, err := deltarepair.EnumerateRepairs(db, prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	if space.K() < 2 || !space.Optimal {
		t.Fatalf("running example space: k=%d optimal=%v", space.K(), space.Optimal)
	}
	single, _, err := deltarepair.Repair(db, prog, deltarepair.Independent)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(space.Repairs[0].Keys()), fmt.Sprint(single.Keys()); got != want {
		t.Fatalf("repairs[0] %s != single independent repair %s", got, want)
	}
	// Grant(1,'NSF') survives every repair, Grant(2,'ERC') none.
	v, err := deltarepair.ParseView("Q(g, n) :- Grant(g, n).", db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := deltarepair.AnswerQuery(db, v, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 1 || len(ans.Possible) != 1 || ans.Certain[0][1].Str != "NSF" {
		t.Fatalf("Grant CQA: certain %v possible %v, want the single NSF row", ans.Certain, ans.Possible)
	}
}

func TestPublicAPIParallel(t *testing.T) {
	db, prog := apiDB(t)
	seq, err := deltarepair.RepairAll(db, prog)
	if err != nil {
		t.Fatal(err)
	}
	par, err := deltarepair.RepairAllParallel(db, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range deltarepair.AllSemantics {
		if !seq[sem].SameSet(par[sem]) {
			t.Fatalf("%s: parallel differs from sequential", sem)
		}
	}
}

func TestPublicAPIReport(t *testing.T) {
	db, prog := apiDB(t)
	var buf bytes.Buffer
	if err := deltarepair.WriteReport(&buf, db, prog); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## Repairs", "| independent | 3 |", "## Recommendation"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestPublicAPIProvenanceDOT(t *testing.T) {
	db, prog := apiDB(t)
	dot, err := deltarepair.ProvenanceDOT(db, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph provenance") || !strings.Contains(dot, "layer 4") {
		t.Fatalf("DOT output wrong:\n%s", dot)
	}
}

func TestPublicAPISideEffect(t *testing.T) {
	schema, err := deltarepair.ParseSchema(`
		Emp(id, dept)
		Dept(id, name)
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("Dept", deltarepair.Int(1), deltarepair.Str("eng"))
	db.MustInsert("Emp", deltarepair.Int(10), deltarepair.Int(1))
	db.MustInsert("Emp", deltarepair.Int(11), deltarepair.Int(1))

	view, err := deltarepair.ParseView("Staffed(n) :- Dept(d, n), Emp(e, d).", schema)
	if err != nil {
		t.Fatal(err)
	}
	res, repaired, err := deltarepair.DeleteViewTuple(db, view,
		[]deltarepair.Value{deltarepair.Str("eng")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest: delete the single Dept tuple (1) rather than both Emps (2).
	if res.Size() != 1 || res.Deleted[0].Rel != "Dept" {
		t.Fatalf("side-effect solution = %v", res.Deleted)
	}
	if repaired.Relation("Emp").Len() != 2 {
		t.Fatal("employees should survive")
	}
}

func TestPublicAPISnapshot(t *testing.T) {
	db, prog := apiDB(t)
	res, repaired, err := deltarepair.Repair(db, prog, deltarepair.Stage)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := deltarepair.SaveSnapshot(repaired, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := deltarepair.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalTuples() != repaired.TotalTuples() {
		t.Fatal("live tuples differ after snapshot round trip")
	}
	if back.TotalDeltaTuples() != res.Size() {
		t.Fatalf("delta tuples = %d, want %d", back.TotalDeltaTuples(), res.Size())
	}
	// The restored database is stable under the program.
	ok, err := deltarepair.IsStable(back, prog)
	if err != nil || !ok {
		t.Fatal("restored repaired database should be stable")
	}
}

func TestPublicAPIRepairAfterDeletionsError(t *testing.T) {
	db, prog := apiDB(t)
	if _, _, err := deltarepair.RepairAfterDeletions(db, prog, []string{"Nope(i1)"}, deltarepair.End); err == nil {
		t.Fatal("unknown key should error")
	}
}
