package deltarepair

import "repro/internal/server"

// Serving layer re-exports: the concurrent repair service from
// internal/server, embeddable through the public package. A Service
// caches named (schema, program, database) sessions behind an LRU,
// warms each exactly once (Prepare + Freeze, single-flight), and answers
// repair / repair-all / is-stable / delete-view-tuple requests on private
// copy-on-write forks of the shared snapshot, behind admission control
// and per-request deadlines. Service.Handler exposes the JSON HTTP API
// that cmd/deltarepaird serves.
type (
	// Service is a concurrent repair service over cached sessions; build
	// one with NewServer.
	Service = server.Service
	// ServerConfig tunes a Service (cache size, admission bound, default
	// timeout, per-request parallelism, solver budget).
	ServerConfig = server.Config
	// RequestOptions tunes one request (timeout, parallelism, solver
	// budget overrides).
	RequestOptions = server.RequestOptions
	// SessionInfo is a point-in-time view of one cached session.
	SessionInfo = server.SessionInfo
)

// NewServer builds a repair service; zero-value config fields take the
// documented defaults.
func NewServer(cfg ServerConfig) *Service { return server.New(cfg) }
