package deltarepair

import (
	"repro/internal/engine"
	"repro/internal/server"
)

// Serving layer re-exports: the concurrent repair service from
// internal/server, embeddable through the public package. A Service
// caches named (schema, program, database) sessions behind an LRU,
// warms each exactly once (Prepare + Freeze, single-flight), and answers
// repair / repair-all / is-stable / delete-view-tuple requests on private
// copy-on-write forks of the session's snapshot, behind admission control
// and per-request deadlines. Sessions are mutable: Service.Update applies
// base-table insert/delete batches, producing new snapshot versions that
// share the frozen cores of untouched relations; requests may pin a
// retained version for read-your-writes. Service.Handler exposes the
// JSON HTTP API that cmd/deltarepaird serves.
type (
	// Service is a concurrent repair service over cached sessions; build
	// one with NewServer.
	Service = server.Service
	// ServerConfig tunes a Service (cache size, admission bound, default
	// timeout, per-request parallelism, solver budget, retained-version
	// window).
	ServerConfig = server.Config
	// RequestOptions tunes one request (timeout, parallelism, solver
	// budget overrides, pinned snapshot version).
	RequestOptions = server.RequestOptions
	// SessionInfo is a point-in-time view of one cached session,
	// including its version head and retention window.
	SessionInfo = server.SessionInfo
	// Row addresses one base tuple by content (relation + values), the
	// unit of Service.Update batches.
	Row = engine.Row
	// UpdateResult reports an applied update batch and the new version.
	UpdateResult = server.UpdateResult
	// SnapshotRing is a bounded history of snapshot versions for callers
	// embedding the engine directly (the Service manages one per
	// session).
	SnapshotRing = engine.SnapshotRing
)

// NewServer builds a repair service; zero-value config fields take the
// documented defaults. NewServer panics when ServerConfig.DataDir is set
// and the data directory cannot be prepared — durable services should use
// OpenServer, which returns the error instead.
func NewServer(cfg ServerConfig) *Service { return server.New(cfg) }

// OpenServer is NewServer returning filesystem errors. With
// ServerConfig.DataDir set, sessions are durable: registrations and
// update batches are persisted (write-ahead log + periodic snapshot
// compaction) and crash recovery restores every persisted session to its
// latest durable version on first access after a restart.
func OpenServer(cfg ServerConfig) (*Service, error) { return server.Open(cfg) }
