// Academic-database cleanup: the workload class the paper's introduction
// motivates. An organization is found to be fraudulent and must be removed
// from an academic-search database; its authors, their authorships, their
// papers, and citations of those papers must follow (the cascade of MAS
// programs 16-20), while a denial-constraint rule keeps co-authored papers
// alive when only one author departs.
//
// The example builds a synthetic department-scale database through the
// public API alone, then contrasts the four semantics on two programs: a
// pure cascade (where all semantics agree) and a mixed program (where they
// diverge and the choice of semantics is a real decision).
//
//	go run ./examples/academic
package main

import (
	"fmt"
	"log"
	"math/rand"

	deltarepair "repro"
)

func main() {
	schema, err := deltarepair.ParseSchema(`
		Organization:o(oid, name)
		Author:a(aid, name, oid)
		Writes:w(aid, pid)
		Publication:p(pid, title)
		Cite:c(citing, cited)
	`)
	if err != nil {
		log.Fatal(err)
	}

	// A small academic world: 8 organizations, 120 authors, 200 papers.
	// Organization 1 ("shady-institute") is the one being removed.
	rng := rand.New(rand.NewSource(7))
	db := deltarepair.NewDatabase(schema)
	const (
		numOrgs    = 8
		numAuthors = 120
		numPapers  = 200
	)
	for o := 1; o <= numOrgs; o++ {
		name := fmt.Sprintf("university-%d", o)
		if o == 1 {
			name = "shady-institute"
		}
		db.MustInsert("Organization", deltarepair.Int(o), deltarepair.Str(name))
	}
	for a := 1; a <= numAuthors; a++ {
		org := 1 + rng.Intn(numOrgs)
		db.MustInsert("Author", deltarepair.Int(a), deltarepair.Str(fmt.Sprintf("author-%d", a)), deltarepair.Int(org))
	}
	for p := 1; p <= numPapers; p++ {
		db.MustInsert("Publication", deltarepair.Int(p), deltarepair.Str(fmt.Sprintf("paper-%d", p)))
		// 1-3 authors per paper.
		for k, n := 0, 1+rng.Intn(3); k < n; k++ {
			db.MustInsert("Writes", deltarepair.Int(1+rng.Intn(numAuthors)), deltarepair.Int(p))
		}
	}
	for i := 0; i < 200; i++ {
		citing, cited := 1+rng.Intn(numPapers), 1+rng.Intn(numPapers)
		if citing != cited {
			db.MustInsert("Cite", deltarepair.Int(citing), deltarepair.Int(cited))
		}
	}
	fmt.Printf("Academic database: %d tuples across %d relations\n\n",
		db.TotalTuples(), len(schema.Relations))

	// Scenario 1 — the full cascade (shape of MAS program 20): removing
	// the organization removes its authors, their authorships, their
	// papers, and citations of those papers.
	cascade, err := deltarepair.ParseProgram(`
		(1) Delta_Organization(oid, n) :- Organization(oid, n), n = 'shady-institute'.
		(2) Delta_Author(aid, n, oid) :- Author(aid, n, oid), Delta_Organization(oid, n2).
		(3) Delta_Writes(aid, pid) :- Writes(aid, pid), Delta_Author(aid, n, oid).
		(4) Delta_Publication(pid, t) :- Publication(pid, t), Delta_Writes(aid, pid).
		(5) Delta_Cite(citing, pid) :- Cite(citing, pid), Delta_Publication(pid, t).
	`, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scenario 1: full cascade — every semantics agrees (pure cascade class):")
	for _, sem := range deltarepair.AllSemantics {
		res, _, err := deltarepair.Repair(db, cascade, sem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %3d deletions  %v\n", sem.String()+":", res.Size(), res.ByRelation())
	}

	// Scenario 2 — a gentler policy (mixed class, shape of MAS program 8):
	// papers should only disappear when they would be left with NO living
	// authors; otherwise only the departing authorship link is cut. Two
	// same-body rules give the repair a choice, so the semantics diverge.
	gentle, err := deltarepair.ParseProgram(`
		(1) Delta_Author(aid, n, oid) :- Author(aid, n, oid), Organization(oid, n2), n2 = 'shady-institute'.
		(2) Delta_Writes(aid, pid) :- Writes(aid, pid), Delta_Author(aid, n, oid).
		(3) Delta_Publication(pid, t) :- Publication(pid, t), Writes(aid, pid), Delta_Author(aid, n, oid).
	`, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nScenario 2: gentle removal — semantics now differ:")
	for _, sem := range deltarepair.AllSemantics {
		res, repaired, err := deltarepair.Repair(db, gentle, sem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %3d deletions  %v  (papers left: %d)\n",
			sem.String()+":", res.Size(), res.ByRelation(),
			repaired.Relation("Publication").Len())
	}

	fmt.Println(`
The cascade program is insensitive to the semantics choice — use the cheap
PTIME executors (end/stage). The gentle program is not: end and stage
delete both the authorship links AND the papers, step deletes one of the
two per pair, and independent finds the global minimum. This is the
paper's central point: the right semantics depends on the repair policy.`)
}
