// TPC-H referential cleanup: offboarding suppliers from an order database
// (the paper's Table 2 workloads). A batch of suppliers is terminated; the
// part-supplier catalog entries and open line items that reference them
// must go too — but how much goes depends on the chosen semantics.
//
// Data comes from the repository's deterministic TPC-H fragment generator
// (internal/tpch, the substitute for the paper's 376K-tuple fragment);
// all repair operations go through the public API.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	deltarepair "repro"
	"repro/internal/tpch"
)

func main() {
	// A laptop-friendly slice of the paper's TPC-H fragment.
	ds := tpch.Generate(tpch.Config{Scale: 0.02, Seed: 42})
	db := ds.DB
	fmt.Printf("TPC-H fragment: %d tuples (%d suppliers, %d partsupp, %d orders, %d lineitems)\n\n",
		ds.Total(), ds.NumSuppliers, ds.NumPartSupp, ds.NumOrders, ds.NumLineItems)

	// Program T-1 of the paper: terminate low-key suppliers' catalog
	// entries; line items referencing a removed catalog entry follow.
	prog, err := deltarepair.ParseProgram(fmt.Sprintf(`
		(1) Delta_PartSupp(pk, sk, q) :- PartSupp(pk, sk, q), Supplier(sk, sn, snk), sk < %d.
		(2) Delta_LineItem(ok, ln, pk, sk, q) :- LineItem(ok, ln, pk, sk, q), Delta_PartSupp(pk2, sk, q2).
	`, ds.SuppKeyCut), db.Schema)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Offboarding suppliers with key < %d:\n", ds.SuppKeyCut)
	for _, sem := range deltarepair.AllSemantics {
		res, repaired, err := deltarepair.Repair(db, prog, sem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %5d deletions %v\n", sem.String()+":", res.Size(), res.ByRelation())
		if ok, _ := deltarepair.IsStable(repaired, prog); !ok {
			log.Fatalf("%s left the database unstable", sem)
		}
	}

	fmt.Println(`
Note the independent repair: instead of cascading through the catalog it
deletes the Supplier tuples themselves — rule (1) then has no satisfying
assignment, and every PartSupp and LineItem row survives. That repair is
invisible to the operational semantics (Supplier tuples are never derived
by any rule), which is exactly the paper's Table 3 story for program T-1.`)

	// Program T-5: retiring a nation. Two rules share a body — delete the
	// nation's suppliers and customers once both exist. Step semantics may
	// fire one rule first and starve the other; stage fires both at once.
	prog5, err := deltarepair.ParseProgram(fmt.Sprintf(`
		(1) Delta_Nation(nk, nn, rk) :- Nation(nk, nn, rk), nk = %d.
		(2) Delta_Supplier(sk, sn, nk) :- Supplier(sk, sn, nk), Delta_Nation(nk, nn, rk), Customer(ck, cn, nk).
		(3) Delta_Customer(ck, cn, nk) :- Customer(ck, cn, nk), Delta_Nation(nk, nn, rk), Supplier(sk, sn, nk).
	`, ds.TargetNation), db.Schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRetiring nation %d (program T-5):\n", ds.TargetNation)
	for _, sem := range deltarepair.AllSemantics {
		res, _, err := deltarepair.Repair(db, prog5, sem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %4d deletions %v\n", sem.String()+":", res.Size(), res.ByRelation())
	}
	fmt.Println("\nStep deletes the cheaper of the two cascades; stage deletes both —")
	fmt.Println("the separation the paper reports for T-5 in Table 3.")
}
