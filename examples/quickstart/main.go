// Quickstart: the paper's running example (Figures 1-2) end to end on the
// public API — build the academic database, declare the delta program, and
// compare all four repair semantics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	deltarepair "repro"
)

func main() {
	// The schema of Figure 1. The ":prefix" names tuple identifiers the
	// way the paper does (ag1, ag2, ... for AuthGrant).
	schema, err := deltarepair.ParseSchema(`
		Grant(gid, name)
		AuthGrant:ag(aid, gid)
		Author(aid, name)
		Writes:w(aid, pid)
		Pub:p(pid, title)
		Cite:c(citing, cited)
	`)
	if err != nil {
		log.Fatal(err)
	}

	// The database instance D of Figure 1.
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("Grant", deltarepair.Int(1), deltarepair.Str("NSF"))
	db.MustInsert("Grant", deltarepair.Int(2), deltarepair.Str("ERC"))
	db.MustInsert("AuthGrant", deltarepair.Int(2), deltarepair.Int(1))
	db.MustInsert("AuthGrant", deltarepair.Int(4), deltarepair.Int(2))
	db.MustInsert("AuthGrant", deltarepair.Int(5), deltarepair.Int(2))
	db.MustInsert("Author", deltarepair.Int(2), deltarepair.Str("Maggie"))
	db.MustInsert("Author", deltarepair.Int(4), deltarepair.Str("Marge"))
	db.MustInsert("Author", deltarepair.Int(5), deltarepair.Str("Homer"))
	db.MustInsert("Cite", deltarepair.Int(7), deltarepair.Int(6))
	db.MustInsert("Writes", deltarepair.Int(4), deltarepair.Int(6))
	db.MustInsert("Writes", deltarepair.Int(5), deltarepair.Int(7))
	db.MustInsert("Pub", deltarepair.Int(6), deltarepair.Str("x"))
	db.MustInsert("Pub", deltarepair.Int(7), deltarepair.Str("y"))

	// The delta program of Figure 2: ERC is a European grant that does not
	// belong in this US-only database; deleting it triggers the repair
	// rules for dependent authors, papers, authorships, and citations.
	prog, err := deltarepair.ParseProgram(`
		(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
		(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
		(2) Delta_Pub(p, t) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
		(3) Delta_Writes(a, p) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
		(4) Delta_Cite(c, p) :- Cite(c, p), Delta_Pub(p, t), Writes(a1, c), Writes(a2, p).
	`, schema)
	if err != nil {
		log.Fatal(err)
	}

	stable, err := deltarepair.IsStable(db, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Database has %d tuples; stable: %v\n\n", db.TotalTuples(), stable)

	// One program, four defensible repairs (Example 1.3 of the paper).
	for _, sem := range deltarepair.AllSemantics {
		res, repaired, err := deltarepair.Repair(db, prog, sem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s deletes %d tuples:", sem.String()+":", res.Size())
		for _, t := range res.Deleted {
			fmt.Printf(" %s", t.ID)
		}
		fmt.Printf("   (remaining: %d tuples)\n", repaired.TotalTuples())
	}

	fmt.Println(`
Reading the results:
  independent  — the globally minimum repair: cut the author-grant links.
  step         — trigger-like, one deletion at a time, greedily minimized.
  stage        — deterministic cascade, all rules per round.
  end          — derive every deletable tuple first, delete at the end.`)
}
