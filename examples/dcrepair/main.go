// Denial-constraint repair: the paper's HoloClean comparison scenario
// (§6, Tables 4-5). A single Author table carries four denial constraints;
// injected errors violate them; the four deletion semantics always restore
// consistency while the cell-repair baseline under-repairs as the error
// rate grows.
//
//	go run ./examples/dcrepair
package main

import (
	"fmt"
	"log"

	deltarepair "repro"
	"repro/internal/holoclean"
	"repro/internal/programs"
)

func main() {
	const rows, errors = 2000, 120

	// A clean Author(aid, name, oid, organization) table plus injected
	// errors: duplicated author keys and misspelled organization names.
	db := programs.CleanAuthorTable(rows, rows/5, 1)
	corrupted := programs.InjectErrors(db, errors, 2)
	fmt.Printf("Author table: %d rows, %d injected errors\n\n", rows, len(corrupted))

	// The four denial constraints as delta rules (inlined equality):
	//   DC1 same aid -> same oid        DC2 same aid -> same name
	//   DC3 same aid -> same org name   DC4 same oid -> same org name
	dcs, err := deltarepair.ParseProgram(programs.DCSource, db.Schema)
	if err != nil {
		log.Fatal(err)
	}

	perDC, total, err := holoclean.ViolatingTuples(db, dcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Violating tuples before repair: DC1=%d DC2=%d DC3=%d DC4=%d (total %d)\n\n",
		perDC[0], perDC[1], perDC[2], perDC[3], total)

	// Deletion-based repair: every semantics fully restores consistency;
	// they differ in how much they delete.
	fmt.Println("Deletion repairs (delta-rule semantics):")
	for _, sem := range deltarepair.AllSemantics {
		res, repaired, err := deltarepair.Repair(db, dcs, sem)
		if err != nil {
			log.Fatal(err)
		}
		_, after, err := holoclean.ViolatingTuples(repaired, dcs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s deletes %4d rows, violations after: %d\n",
			sem.String()+":", res.Size(), after)
	}

	// Cell-based repair: fixes values instead of deleting rows, but only
	// where the statistical signal is confident — residual violations stay.
	rep, repaired, err := holoclean.Repair(db, holoclean.Config{ConfidenceThreshold: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	_, after, err := holoclean.ViolatingTuples(repaired, dcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCell repair (HoloClean-style baseline):\n")
	fmt.Printf("  flagged %d noisy cells, repaired %d cells in %d tuples, violations after: %d\n",
		rep.NoisyCells, rep.RepairedCells, rep.RepairedTuples, after)

	fmt.Println(`
The deletion semantics guarantee a consistent result (Prop. 3.18 of the
paper); independent semantics does it with the provably minimum number of
deletions. The cell-repair baseline preserves rows and fixes many typos,
but key-duplication errors carry no statistical signal, so violations
survive — the paper's Table 4/5 contrast in miniature.`)
}
