// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), one benchmark per artifact, plus the design-choice ablations from
// DESIGN.md and micro-benchmarks of the core machinery. Scales are
// laptop-friendly; raise them through internal/experiments.Config (or the
// cmd/experiments flags) to approach the paper's dataset sizes.
//
//	go test -bench=. -benchmem .
package deltarepair_test

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"testing"

	deltarepair "repro"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/mas"
	"repro/internal/programs"
	"repro/internal/sat"
	"repro/internal/tpch"
)

// benchCfg is the shared benchmark configuration: small datasets, paper
// ladder scaled to the row count.
func benchCfg() experiments.Config {
	return experiments.Config{
		MASScale:    0.01,
		TPCHScale:   0.005,
		Rows:        600,
		Errors:      24,
		Seed:        1,
		IndMaxNodes: 150000,
		ErrorLevels: []int{12, 24, 36, 60, 84, 120},
	}
}

// --- Table 3: containment of results -------------------------------------

func BenchmarkTable3Containment(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		masRuns, _, err := experiments.RunMAS(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		tpchRuns, _, err := experiments.RunTPCH(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Table3(append(masRuns, tpchRuns...))
		if len(rows) != 26 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Figure 6: result sizes over the MAS programs ------------------------

func benchSizes(b *testing.B, selected []int, wantRows int) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		runs, _, err := experiments.RunMAS(cfg, selected)
		if err != nil {
			b.Fatal(err)
		}
		if rows := experiments.Sizes(runs); len(rows) != wantRows {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig6aResultSizes(b *testing.B) {
	benchSizes(b, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 10)
}

func BenchmarkFig6bResultSizes(b *testing.B) {
	benchSizes(b, []int{11, 12, 13, 14, 15}, 5)
}

func BenchmarkFig6cResultSizes(b *testing.B) {
	benchSizes(b, []int{16, 17, 18, 19, 20}, 5)
}

// --- Figure 7: MAS execution times ----------------------------------------

func BenchmarkFig7Runtimes(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		runs, _, err := experiments.RunMAS(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows := experiments.Times(runs); len(rows) != 20 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Figure 8: runtime breakdown of Algorithms 1 and 2 --------------------

func BenchmarkFig8Breakdown(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		runs, _, err := experiments.RunMAS(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Breakdown(runs, "1-15", func(r *experiments.ProgramRun) bool { return r.Number <= 15 })
		rows = append(rows, experiments.Breakdown(runs, "16-20", func(r *experiments.ProgramRun) bool { return r.Number >= 16 })...)
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Figure 9: TPC-H sizes and runtimes ------------------------------------

func BenchmarkFig9aTPCHSizes(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		runs, _, err := experiments.RunTPCH(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows := experiments.Sizes(runs); len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig9bTPCHRuntimes(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		runs, _, err := experiments.RunTPCH(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows := experiments.Times(runs); len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Tables 4 and 5: the HoloClean comparison ------------------------------

func BenchmarkTable4OverDeletion(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t4, _, err := experiments.Tables4And5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(t4) != len(cfg.ErrorLevels) {
			b.Fatalf("rows = %d", len(t4))
		}
	}
}

func BenchmarkTable5Violations(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		_, t5, err := experiments.Tables4And5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(t5) != len(cfg.ErrorLevels) {
			b.Fatalf("rows = %d", len(t5))
		}
	}
}

// --- Figure 10: HoloClean runtime sweeps -----------------------------------

func BenchmarkFig10aErrors(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10Errors(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(cfg.ErrorLevels) {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig10bRows(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10Rows(cfg, []int{300, 600, 1200})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Trigger comparison -----------------------------------------------------

func BenchmarkTriggerComparison(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TriggerComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(experiments.TriggerPrograms) {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Ablations ---------------------------------------------------------------

func BenchmarkAblations(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Micro-benchmarks of the core machinery ----------------------------------

// BenchmarkSemantics measures each executor on the cascade program 10
// (the workload where all four semantics do the same amount of deletion
// work), isolating executor overhead.
func BenchmarkSemantics(b *testing.B) {
	ds := mas.Generate(mas.Config{Scale: 0.02, Seed: 1})
	p, err := programs.MAS(10, ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, sem := range core.AllSemantics {
		b.Run(sem.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds.DB, p, sem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRepairEnumeration measures k-best repair enumeration against
// the single-repair baseline on the MAS cascade: k=1 is one Min-Ones
// solve over the shared provenance CNF (the RunIndependent path), k=8
// adds up to seven blocking-clause re-solves plus materializations.
// bench.sh turns the pair into the comparison/server_repairs entry.
func BenchmarkRepairEnumeration(b *testing.B) {
	ds := mas.Generate(mas.Config{Scale: 0.02, Seed: 1})
	p, err := programs.MAS(10, ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp, err := core.EnumerateRepairs(ds.DB, p, k)
				if err != nil {
					b.Fatal(err)
				}
				if sp.K() < 1 {
					b.Fatal("empty repair space")
				}
			}
		})
	}
}

// BenchmarkColumnarVsRow contrasts the columnar frozen-core read paths
// (batch probes with pushed-down column checks, zero-copy lookups) against
// the row-oriented reference on the same end-semantics workload. Each leg
// freezes its own fork so the per-mode read structures are rebuilt from
// scratch; bench.sh turns the pair into the comparison/columnar_vs_row
// speedup and the memory/columnar_vs_row allocation-ratio entries.
func BenchmarkColumnarVsRow(b *testing.B) {
	ds := mas.Generate(mas.Config{Scale: 0.02, Seed: 1})
	p, err := programs.MAS(10, ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"row", false}, {"columnar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := engine.SetColumnarEnabled(mode.on)
			defer engine.SetColumnarEnabled(prev)
			db := ds.DB.Clone()
			db.Freeze()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(db, p, core.SemEnd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluationStrategies contrasts seminaive and naive end-semantics
// evaluation on the 5-layer cascade (the DESIGN.md evaluation ablation).
func BenchmarkEvaluationStrategies(b *testing.B) {
	ds := mas.Generate(mas.Config{Scale: 0.05, Seed: 1})
	p, err := programs.MAS(20, ds)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunEnd(ds.DB, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunEndNaive(ds.DB, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPreparedRepair contrasts the server-style amortized path
// (Prepare once, Repair per request) with per-request parse + validate +
// plan + repair — the workload the prepared-execution layer exists for.
// The small pair (the 13-tuple running example) models high-rate request
// serving where per-request fixed costs dominate; the mas pair (a scale
// 0.02 cascade) shows the amortization shrinking as the repair itself
// grows. bench.sh turns each unprepared/prepared pair into a speedup entry
// in the JSON snapshot.
func BenchmarkPreparedRepair(b *testing.B) {
	bench := func(db *deltarepair.Database, src string) func(*testing.B) {
		return func(b *testing.B) {
			b.Run("unprepared", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p, err := deltarepair.ParseProgram(src, db.Schema)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := deltarepair.Repair(db, p, deltarepair.Stage); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("prepared", func(b *testing.B) {
				p, err := deltarepair.ParseProgram(src, db.Schema)
				if err != nil {
					b.Fatal(err)
				}
				pp, err := deltarepair.Prepare(p, db.Schema)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := pp.Repair(db, deltarepair.Stage); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	b.Run("small", bench(programs.RunningExampleDB(), programs.RunningExampleSource))
	ds := mas.Generate(mas.Config{Scale: 0.02, Seed: 1})
	src, err := programs.MASSource(10, ds)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mas", bench(ds.DB, src))
}

// BenchmarkParallelDerivation measures requesting parallelism on a
// workload the co-partitioning analysis rejects (the 5-layer cascade
// joins the derived relation on rotating columns, so MAS-20 is not
// shard-local). Since the per-round worker pool was retired in favor of
// hash-sharded evaluation, Parallelism on a non-shardable program falls
// back to sequential derivation — this pair pins that the fallback
// decision itself costs nothing (the ratio should sit at ~1.0 on any
// host). Single-core wall clock can still wobble well outside the band —
// a committed snapshot once recorded 0.760 while both legs kept
// byte-identical B/op and allocs/op, proving the code path never changed
// — which is why this entry is recorded for trend-watching but not gated
// in check mode. See BenchmarkShardedDerivation for the workload where
// parallelism engages.
func BenchmarkParallelDerivation(b *testing.B) {
	ds := mas.Generate(mas.Config{Scale: 0.05, Seed: 1})
	p, err := programs.MAS(20, ds)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := datalog.Prepare(p, ds.DB.Schema)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, par int) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunWith(ds.DB, p, core.SemEnd, core.Options{Prepared: prep, Parallelism: par}); err != nil {
				b.Fatal(err)
			}
		}
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	b.Run("sequential", func(b *testing.B) { run(b, 0) })
	b.Run("parallel", func(b *testing.B) { run(b, workers) })
}

// BenchmarkShardedDerivation contrasts sequential derivation with
// shard-local parallel evaluation on a workload the co-partitioning
// analysis proves shardable (MAS-15 at scale 0.2 — large enough to clear
// the auto-parallelism size floor, join-heavy enough that per-shard
// derivation dominates shard setup). Results are byte-identical; only
// wall-clock differs. The sharded leg fans out to NumCPU shards (min 2),
// the sharded4 leg pins 4 shards so multi-core runs report a
// fixed-width scaling number. On a single-CPU host the shards run
// serially and both legs measure pure partition-and-merge overhead
// rather than a speedup; bench.sh records the pairs as
// comparison/sharded_vs_sequential and scaling/sharded_speedup_4cores.
func BenchmarkShardedDerivation(b *testing.B) {
	ds := mas.Generate(mas.Config{Scale: 0.2, Seed: 1})
	p, err := programs.MAS(15, ds)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := datalog.Prepare(p, ds.DB.Schema)
	if err != nil {
		b.Fatal(err)
	}
	if !prep.Shardable() {
		b.Fatal("MAS-15 must be co-partitionable")
	}
	run := func(b *testing.B, par int) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunWith(ds.DB, p, core.SemEnd, core.Options{Prepared: prep, Parallelism: par}); err != nil {
				b.Fatal(err)
			}
		}
	}
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 2
	}
	b.Run("sequential", func(b *testing.B) { run(b, 0) })
	b.Run("sharded", func(b *testing.B) { run(b, shards) })
	b.Run("sharded4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkForkVsClone contrasts minting an executor working copy by deep
// clone (the pre-CoW behaviour, still available as Database.Clone) with
// forking a frozen snapshot. The clone leg is O(database); the fork leg is
// O(relations), independent of base size — the fork10x leg repeats the
// fork on a 10x larger base and should land within noise of the small one
// (bench.sh turns the pair into the O(changes) scaling entry, and
// fork-vs-clone into a speedup entry).
func BenchmarkForkVsClone(b *testing.B) {
	ds := mas.Generate(mas.Config{Scale: 0.02, Seed: 1})
	b.Run("clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ds.DB.Clone().TotalTuples() == 0 {
				b.Fatal("empty clone")
			}
		}
	})
	snap := ds.DB.Freeze()
	b.Run("fork", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if snap.Fork().TotalTuples() == 0 {
				b.Fatal("empty fork")
			}
		}
	})
	big := mas.Generate(mas.Config{Scale: 0.2, Seed: 1})
	snapBig := big.DB.Freeze()
	b.Run("fork10x", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if snapBig.Fork().TotalTuples() == 0 {
				b.Fatal("empty fork")
			}
		}
	})
}

// stepSearchCloneBaseline replays the pre-CoW RunStepExhaustive inner
// loop: a full deep clone per visited state, with lazily rebuilt indexes
// in every clone. It exists purely as the benchmark baseline recording the
// before/after of the fork rework; the algorithm matches step.go exactly.
func stepSearchCloneBaseline(db *deltarepair.Database, p *deltarepair.Program, maxStates int) (int, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return 0, err
	}
	ctx := prep.AcquireContext()
	defer prep.ReleaseContext(ctx)
	sig := func(tuples []*deltarepair.Tuple) uint64 {
		h := uint64(14695981039346656037)
		for _, t := range tuples {
			h ^= uint64(t.TID)
			h *= 1099511628211
		}
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		return h
	}
	type state struct{ tuples []*deltarepair.Tuple }
	visited := map[uint64]bool{sig(nil): true}
	frontier := []state{{}}
	for len(frontier) > 0 {
		var next []state
		for _, st := range frontier {
			work := db.Clone()
			for _, t := range st.tuples {
				work.DeleteTupleToDelta(t)
			}
			headSet := make(map[engine.TupleID]bool)
			var heads []*deltarepair.Tuple
			for _, pr := range prep.Rules {
				err := pr.EvalOperational(work, ctx, func(a *datalog.Assignment) bool {
					h := a.Head()
					if !headSet[h.TID] {
						headSet[h.TID] = true
						heads = append(heads, h)
					}
					return true
				})
				if err != nil {
					return 0, err
				}
			}
			if len(heads) == 0 {
				return len(st.tuples), nil
			}
			for _, h := range heads {
				tuples := make([]*deltarepair.Tuple, 0, len(st.tuples)+1)
				tuples = append(tuples, st.tuples...)
				tuples = append(tuples, h)
				slices.SortFunc(tuples, func(a, b *deltarepair.Tuple) int {
					return cmp.Compare(a.TID, b.TID)
				})
				sk := sig(tuples)
				if visited[sk] {
					continue
				}
				if len(visited) >= maxStates {
					return 0, fmt.Errorf("exceeded %d states", maxStates)
				}
				visited[sk] = true
				next = append(next, state{tuples: tuples})
			}
		}
		frontier = next
	}
	return 0, fmt.Errorf("search exhausted")
}

// BenchmarkStepSearch measures the exhaustive step-semantics search
// (Def. 3.5 state expansion) on the workload the CoW rework targets: a
// small violating core inside a large, mostly shared base (the shape a
// debugger sees when validating one suspect cascade over production
// data). The search expands 2^6 deletion states; the fork leg is the
// production RunStepExhaustive, which freezes the input once and forks
// the shared base per visited state in O(deletions so far), while the
// clone leg is the pre-CoW baseline deep-cloning the whole base at every
// state. bench.sh turns the pair into the step_search speedup entry.
func BenchmarkStepSearch(b *testing.B) {
	schema, err := deltarepair.ParseSchema(`Big(a, b)
	                                        Small(x, tag)`)
	if err != nil {
		b.Fatal(err)
	}
	db := deltarepair.NewDatabase(schema)
	for i := 0; i < 5000; i++ {
		db.MustInsert("Big", deltarepair.Int(i), deltarepair.Int(i%97))
	}
	for i := 0; i < 30; i++ {
		tag := "ok"
		if i < 6 {
			tag = "bad"
		}
		db.MustInsert("Small", deltarepair.Int(i), deltarepair.Str(tag))
	}
	p, err := deltarepair.ParseProgram(
		`Delta_Small(x, t) :- Small(x, t), t = 'bad'.`, schema)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fork", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, _, err := core.RunStepExhaustive(db, p, core.StepExhaustiveOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Size() != 6 {
				b.Fatalf("size = %d", res.Size())
			}
		}
	})
	b.Run("clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			size, err := stepSearchCloneBaseline(db, p, core.DefaultMaxStepStates)
			if err != nil {
				b.Fatal(err)
			}
			if size != 6 {
				b.Fatalf("size = %d", size)
			}
		}
	})
}

// BenchmarkMinOnesSolver measures the Min-Ones search on a layered
// vertex-cover-style instance (the shape Algorithm 1 produces for DC
// programs).
func BenchmarkMinOnesSolver(b *testing.B) {
	build := func() *sat.Formula {
		const stars, leaves = 120, 5
		f := sat.NewFormula(stars * (leaves + 1))
		v := 1
		for s := 0; s < stars; s++ {
			hub := v
			v++
			for l := 0; l < leaves; l++ {
				f.AddClause(hub, v)
				v++
			}
		}
		return f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sat.MinOnes(build(), sat.Options{})
		if !res.Satisfiable || res.Cost != 120 {
			b.Fatalf("cost = %d", res.Cost)
		}
	}
}

// BenchmarkTPCHGeneration measures dataset generation throughput.
func BenchmarkTPCHGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := tpch.Generate(tpch.Config{Scale: 0.02, Seed: int64(i)})
		if ds.Total() == 0 {
			b.Fatal("empty dataset")
		}
	}
}
