// Package deltarepair is a Go implementation of the delta-rule database
// repair framework from "On Multiple Semantics for Declarative Database
// Repairs" (Gilad, Deutch, Roy — SIGMOD 2020).
//
// Delta rules declaratively specify deletion-based repairs: a rule
//
//	Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
//
// reads "if grant g was deleted and author a won it, delete a". A delta
// program can express denial constraints, cascade deletions (SQL "after
// delete" triggers), and causal rules. Because one program admits several
// reasonable interpretations, the framework defines four semantics:
//
//   - Independent — the globally minimum set of deletions that leaves no
//     rule satisfiable (optimal repair; NP-hard, solved via provenance +
//     Min-Ones-SAT, the paper's Algorithm 1);
//   - Step — fire one rule instance at a time, updating immediately
//     (trigger-like; NP-hard to minimize, approximated by the paper's
//     greedy provenance-graph Algorithm 2);
//   - Stage — fire all satisfiable instances per round, then update
//     (deterministic cascade; PTIME);
//   - End — derive every deletable tuple first, update once at the end
//     (datalog baseline; PTIME).
//
// The typical flow:
//
//	schema, _ := deltarepair.ParseSchema(`Grant(gid, name)
//	                                      Author(aid, name)`)
//	db := deltarepair.NewDatabase(schema)
//	db.MustInsert("Grant", deltarepair.Int(2), deltarepair.Str("ERC"))
//	prog, _ := deltarepair.ParseProgram(
//	    `Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.`, schema)
//	result, repaired, _ := deltarepair.Repair(db, prog, deltarepair.Independent)
//
// See the examples/ directory for complete programs, and DESIGN.md for the
// architecture and the paper-experiment index.
package deltarepair

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/cqa"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/sideeffect"
	"repro/internal/viz"
)

// Re-exported core types: the public API is a thin facade over the
// internal packages, so all methods on these types are available.
type (
	// Schema declares relations and their attributes.
	Schema = engine.Schema
	// Database is an instance over a Schema, tracking base and delta
	// (deleted-tuple) relations.
	Database = engine.Database
	// Relation is a set of tuples with deterministic iteration.
	Relation = engine.Relation
	// Tuple is one immutable row.
	Tuple = engine.Tuple
	// Value is a typed scalar (int, string, or float).
	Value = engine.Value
	// Snapshot is an immutable frozen database state. Database.Freeze
	// produces one; Snapshot.Fork mints O(changes) copy-on-write working
	// copies that share the frozen storage and its warm indexes.
	Snapshot = engine.Snapshot
	// Program is a validated delta program.
	Program = datalog.Program
	// Rule is a single delta rule.
	Rule = datalog.Rule
	// Semantics selects one of the paper's four repair semantics.
	Semantics = core.Semantics
	// Result reports a computed repair: the stabilizing set, timings, and
	// diagnostics.
	Result = core.Result
	// Options bundles per-semantics tuning knobs for RepairWith.
	Options = core.Options
	// IndependentOptions tunes Algorithm 1 (solver budget, tie-breaking).
	IndependentOptions = core.IndependentOptions
)

// The four semantics (§3 of the paper).
const (
	End         = core.SemEnd
	Stage       = core.SemStage
	Step        = core.SemStep
	Independent = core.SemIndependent
)

// AllSemantics lists the four semantics in the paper's order:
// independent, step, stage, end.
var AllSemantics = core.AllSemantics

// Value constructors.

// Int builds an integer value.
func Int(i int) Value { return engine.Int(i) }

// Int64 builds an integer value from an int64.
func Int64(i int64) Value { return engine.Int64(i) }

// Str builds a string value.
func Str(s string) Value { return engine.Str(s) }

// Float builds a float value.
func Float(f float64) Value { return engine.Float(f) }

// NewSchema creates an empty schema; add relations with MustAddRelation or
// AddRelation.
func NewSchema() *Schema { return engine.NewSchema() }

// ParseSchema parses a schema declaration, one relation per line:
//
//	# comments allowed
//	Organization(oid, name)
//	Author:au(aid, name, oid)     # optional ":prefix" names tuple IDs au1, au2, ...
func ParseSchema(src string) (*Schema, error) {
	s, err := engine.ParseSchema(src)
	if err != nil {
		// Keep the public facade's historical error prefix: callers see
		// "deltarepair:", not the internal package name.
		return nil, fmt.Errorf("deltarepair: %s", strings.TrimPrefix(err.Error(), "engine: "))
	}
	return s, nil
}

// NewDatabase creates an empty database over the schema.
func NewDatabase(s *Schema) *Database { return engine.NewDatabase(s) }

// ParseProgram parses and validates a delta program against the schema.
// See the package documentation and internal/datalog for the concrete
// syntax.
func ParseProgram(src string, schema *Schema) (*Program, error) {
	return datalog.ParseAndValidate(src, schema)
}

// Repair computes the stabilizing set under the chosen semantics and
// returns it together with the repaired database (D \ S) ∪ ∆(S). The input
// database is cloned, never mutated.
func Repair(db *Database, p *Program, sem Semantics) (*Result, *Database, error) {
	return core.Run(db, p, sem)
}

// RepairWith is Repair with explicit options (solver budgets etc.).
func RepairWith(db *Database, p *Program, sem Semantics, opts Options) (*Result, *Database, error) {
	return core.RunWith(db, p, sem, opts)
}

// RepairContext is Repair with per-request cancellation: when ctx is
// canceled or its deadline passes, the executors abort at their next
// checkpoint (every derivation round, every few thousand enumerated
// assignments, and inside the SAT search) and return ctx.Err(). This is
// the entry point serving layers use to bound worst-case request latency.
func RepairContext(ctx context.Context, db *Database, p *Program, sem Semantics) (*Result, *Database, error) {
	return RepairWithContext(ctx, db, p, sem, Options{})
}

// RepairWithContext is RepairContext with explicit options.
func RepairWithContext(ctx context.Context, db *Database, p *Program, sem Semantics, opts Options) (*Result, *Database, error) {
	opts.Ctx = ctx
	return core.RunWith(db, p, sem, opts)
}

// RepairAllContext runs all four semantics sequentially under one context;
// it stops at the first cancellation or error.
func RepairAllContext(ctx context.Context, db *Database, p *Program) (map[Semantics]*Result, error) {
	out := make(map[Semantics]*Result, len(AllSemantics))
	for _, sem := range AllSemantics {
		res, _, err := RepairWithContext(ctx, db, p, sem, Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sem, err)
		}
		out[sem] = res
	}
	return out, nil
}

// RepairAll runs all four semantics and returns their results keyed by
// semantics.
func RepairAll(db *Database, p *Program) (map[Semantics]*Result, error) {
	return core.RunAll(db, p)
}

// Prepared is a program compiled for repeated execution: validation, rule
// compilation, per-source-shape join planning, and index-requirement
// analysis all happen once in Prepare, and every Repair call on the result
// reuses them together with pooled execution state. A Prepared is safe for
// concurrent use.
//
// Server-style callers answering many repair requests over one large,
// mostly shared base should combine Prepared with copy-on-write snapshots:
// Prepare once, db.Freeze() once, and snap.Fork() per request —
//
//	pp, _ := deltarepair.Prepare(prog, schema)
//	snap := db.Freeze()
//	// per request (safe concurrently):
//	res, repaired, err := pp.Repair(snap.Fork(), deltarepair.Stage)
//
// Each request then pays O(relations) to fork plus cost proportional to
// its own deletions, never O(database); the forks share the frozen base's
// storage and warm indexes. Passing a database to Repair directly still
// works — the executors fork it internally — but the explicit
// Freeze/Fork handle is what makes concurrent serving over one base both
// cheap and race-free.
type Prepared struct {
	prog *Program
	prep *datalog.Prepared
}

// Prepare compiles a validated program against its schema for repeated
// repair execution.
func Prepare(p *Program, schema *Schema) (*Prepared, error) {
	prep, err := datalog.Prepare(p, schema)
	if err != nil {
		return nil, err
	}
	return &Prepared{prog: p, prep: prep}, nil
}

// Program returns the prepared program.
func (pp *Prepared) Program() *Program { return pp.prog }

// Repair computes the stabilizing set under the chosen semantics using the
// prepared plans. Like Repair, the input database is cloned, never mutated.
func (pp *Prepared) Repair(db *Database, sem Semantics) (*Result, *Database, error) {
	return pp.RepairWith(db, sem, Options{})
}

// RepairWith is Prepared.Repair with explicit options (solver budgets,
// Parallelism for concurrent per-rule evaluation, etc.).
func (pp *Prepared) RepairWith(db *Database, sem Semantics, opts Options) (*Result, *Database, error) {
	opts.Prepared = pp.prep
	return core.RunWith(db, pp.prog, sem, opts)
}

// RepairContext is Prepared.Repair with per-request cancellation (see
// RepairContext on the package level); combined with Snapshot.Fork it is
// the hot path of the serving layer: prepared plans, a shared frozen base,
// and a deadline per request.
func (pp *Prepared) RepairContext(ctx context.Context, db *Database, sem Semantics) (*Result, *Database, error) {
	return pp.RepairWithContext(ctx, db, sem, Options{})
}

// RepairWithContext is Prepared.RepairContext with explicit options.
func (pp *Prepared) RepairWithContext(ctx context.Context, db *Database, sem Semantics, opts Options) (*Result, *Database, error) {
	opts.Prepared = pp.prep
	opts.Ctx = ctx
	return core.RunWith(db, pp.prog, sem, opts)
}

// RepairAll runs all four semantics over the prepared program.
func (pp *Prepared) RepairAll(db *Database) (map[Semantics]*Result, error) {
	out := make(map[Semantics]*Result, len(AllSemantics))
	for _, sem := range AllSemantics {
		res, _, err := pp.Repair(db, sem)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sem, err)
		}
		out[sem] = res
	}
	return out, nil
}

// IsStable reports whether the database satisfies no rule of the prepared
// program, reusing the prepared plans (Def. 3.12).
func (pp *Prepared) IsStable(db *Database) (bool, error) {
	return core.CheckStableP(db, pp.prep)
}

// IsStable reports whether the database satisfies no rule of the program
// (Def. 3.12): a stable database needs no repair.
func IsStable(db *Database, p *Program) (bool, error) {
	return core.CheckStable(db, p)
}

// IsStabilizingSet reports whether deleting the tuples with the given
// content keys stabilizes the database (Def. 3.14).
func IsStabilizingSet(db *Database, p *Program, keys []string) (bool, error) {
	return core.IsStabilizing(db, p, keys)
}

// Explanation types: answers to "why was this tuple deleted", extracted
// from the provenance of the end-semantics derivation (§5 of the paper).
type (
	// Explainer answers deletion-provenance queries for one database and
	// program.
	Explainer = core.Explainer
	// Explanation is a derivation tree for one deleted tuple.
	Explanation = core.Explanation
	// ResultExplanation pairs a deleted tuple with its explanation (nil
	// for underivable tuples, which independent semantics may delete).
	ResultExplanation = core.ResultExplanation
)

// NewExplainer captures deletion provenance for the database and program;
// use Explain/ExplainResult on the returned Explainer. Works for results
// of any semantics: every operationally-deletable tuple is covered, and
// underivable tuples (chosen only by independent semantics) are reported
// as having no derivation.
func NewExplainer(db *Database, p *Program) (*Explainer, error) {
	return core.NewExplainer(db, p)
}

// RepairAllParallel runs all four semantics concurrently (one goroutine
// per semantics, each on a private clone); results are identical to
// RepairAll.
func RepairAllParallel(db *Database, p *Program) (map[Semantics]*Result, error) {
	return core.RunAllParallel(db, p)
}

// WriteReport writes a full Markdown repair analysis — database stats,
// violations, all four semantics' repairs, containments, and sample
// explanations — to w.
func WriteReport(w io.Writer, db *Database, p *Program) error {
	return report.Generate(w, db, p, report.Options{})
}

// ProvenanceDOT renders the program's deletion-provenance graph over the
// database as Graphviz DOT (the paper's Figure 5 layout).
func ProvenanceDOT(db *Database, p *Program) (string, error) {
	g, err := core.CaptureProvenance(db, p)
	if err != nil {
		return "", err
	}
	return viz.ProvenanceDOT(g, db.DisplayKey), nil
}

// Deletion-propagation (source side-effect) types: remove a view tuple at
// minimum cost while respecting a delta program's cascades (§7 of the
// paper proposes exactly this combination).
type (
	// View is a conjunctive query over base relations.
	View = sideeffect.View
	// SideEffectResult reports a view-tuple deletion solution.
	SideEffectResult = sideeffect.Result
)

// ParseView parses "V(x, y) :- R(x, z), S(z, y)." into a View.
func ParseView(src string, schema *Schema) (*View, error) {
	return sideeffect.ParseView(src, schema)
}

// DeleteViewTuple finds a minimum base-deletion set that removes the view
// row with the given values while keeping the database stable w.r.t. the
// program (nil program = plain deletion propagation). Returns the solution
// and the repaired database.
func DeleteViewTuple(db *Database, v *View, target []Value, p *Program) (*SideEffectResult, *Database, error) {
	return sideeffect.DeleteViewTuple(db, v, target, p, sideeffect.Options{})
}

// Repair-space types: enumeration of the k best independent-semantics
// repairs and consistent query answering across them.
type (
	// RepairSpace holds distinct minimal repairs in nondecreasing cost
	// order plus the per-tuple certain/possible deletion classification.
	RepairSpace = core.RepairSpace
	// EnumerateOptions selects the space width (K) and the minimality
	// notion (set-minimal k-best, or cardinality-minimal only).
	EnumerateOptions = core.EnumerateOptions
	// Answers reports one conjunctive query's certain and possible answers
	// over a repair space.
	Answers = cqa.Answers
)

// MaxEnumRepairs caps EnumerateOptions.K (the per-tuple repair membership
// is a 64-bit mask).
const MaxEnumRepairs = core.MaxEnumRepairs

// EnumerateRepairs computes the k best independent-semantics repairs:
// distinct set-minimal stabilizing sets in nondecreasing cost order, with
// EnumerateRepairs(db, p, 1) identical to Repair(db, p, Independent). The
// input database is cloned, never mutated.
func EnumerateRepairs(db *Database, p *Program, k int) (*RepairSpace, error) {
	return core.EnumerateRepairs(db, p, k)
}

// EnumerateRepairsWith is EnumerateRepairs with explicit executor options
// (prepared plans, parallelism, context, solver budget) and enumeration
// options (cardinality-only mode).
func EnumerateRepairsWith(db *Database, p *Program, opts Options, eopts EnumerateOptions) (*RepairSpace, error) {
	return core.EnumerateRepairsWith(db, p, opts, eopts)
}

// AnswerQuery evaluates a conjunctive query consistently across a repair
// space: certain answers hold in every enumerated repair, possible answers
// in at least one. The database must be the instance the space was
// enumerated from (or a fork of the same snapshot version).
func AnswerQuery(db *Database, v *View, space *RepairSpace) (*Answers, error) {
	return cqa.Answer(db, v, space)
}

// SaveSnapshot / LoadSnapshot persist a database (schema, base and delta
// relations, tuple identities) to a binary stream, so repair sessions can
// be resumed.
func SaveSnapshot(db *Database, w io.Writer) error { return db.Save(w) }

// LoadSnapshot reconstructs a database from SaveSnapshot output.
func LoadSnapshot(r io.Reader) (*Database, error) { return engine.LoadSnapshot(r) }

// RepairAfterDeletions models the paper's second initialization scenario
// (§3.6) and causal "interventions" (§7): the database is stable, the user
// deletes the tuples with the given content keys, and the program repairs
// the fallout under the chosen semantics. Returns the repair result (which
// excludes the user's own deletions) and the repaired database.
func RepairAfterDeletions(db *Database, p *Program, keys []string, sem Semantics) (*Result, *Database, error) {
	work := db.Fork()
	for _, k := range keys {
		if !work.DeleteToDelta(k) {
			return nil, nil, fmt.Errorf("deltarepair: no live tuple %s to delete", k)
		}
	}
	return core.Run(work, p, sem)
}
