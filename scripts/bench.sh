#!/usr/bin/env sh
# Run the full benchmark suite and record a dated JSON snapshot
# (BENCH_<date>.json) so the perf trajectory is tracked PR over PR.
# If the dated snapshot already exists (two runs in one day), a numeric
# suffix keeps the earlier snapshot intact.
#
# Usage:
#   ./scripts/bench.sh [extra go-test args...]     full run + snapshot
#   ./scripts/bench.sh --check [go-test args...]   regression gate
#
# --check reruns only the key benchmarks, derives the same comparison
# speedups and memory ratios, and fails (exit 1) if any key entry dropped
# more than BENCH_CHECK_TOLERANCE percent (default 25) below the latest
# committed snapshot. Speedups and allocation ratios compare two legs
# measured in the same run, so they transfer across machines — absolute
# ns/op does not. No snapshot is written in check mode; CI runs it as the
# perf smoke.
set -eu

cd "$(dirname "$0")/.."

# Stray compiled test binaries (go test -c, interrupted runs) must never
# linger in the repo root: they shadow real changes in `git status` noise
# and bloat accidental adds. .gitignore covers *.test; this covers disk.
rm -f ./*.test

check=0
if [ "${1:-}" = "--check" ]; then
    check=1
    shift
fi

date="$(date -u +%Y-%m-%d)"
raw="$(mktemp)"
json="$(mktemp)"
trap 'rm -f "$raw" "$json"' EXIT

if [ "$check" = 1 ]; then
    # Key benches only: every leg a checked speedup is derived from.
    benchre='^(BenchmarkPreparedRepair|BenchmarkForkVsClone|BenchmarkStepSearch|BenchmarkServerThroughput|BenchmarkSessionUpdate|BenchmarkDeleteMaintenance|BenchmarkColumnarVsRow|BenchmarkShardedDerivation)'
    echo "running key benchmarks for the regression check..."
    go test -bench="$benchre" -benchmem -run='^$' "$@" . > "$raw"
else
    echo "running benchmarks (this regenerates every paper table/figure)..."
    # No pipe into tee: plain sh has no pipefail, and a masked go-test
    # failure would produce a silently truncated snapshot.
    go test -bench=. -benchmem -run='^$' "$@" . > "$raw"
fi
cat "$raw"

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}, then append
# derived comparison entries: the prepared-vs-unprepared,
# parallel-vs-sequential, CoW, serving, and mutable-session speedups the
# respective subsystems exist for (speedup > 1 means the first leg is
# faster).
awk -v date="$date" '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; nsv = $3
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix for stable names
    ns[name] = nsv
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (bytes != "")  by[name] = bytes
    if (allocs != "") al[name] = allocs
    if (n++) printf ",\n"
    printf "  {\"date\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", date, name, iters, nsv
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
function ratio(label, fast, slow) {
    if (fast in ns && slow in ns && ns[fast] + 0 > 0) {
        if (n++) printf ",\n"
        printf "  {\"date\": \"%s\", \"name\": \"%s\", \"speedup\": %.3f, \"fast_ns\": %s, \"slow_ns\": %s}", \
            date, label, ns[slow] / ns[fast], ns[fast], ns[slow]
    }
}
# Memory-reduction ratios: allocs/op and B/op of the heavy leg over the
# lean leg measured in the same run (ratio > 1 means the lean leg
# allocates less). Like speedups, these transfer across machines.
function memratio(label, lean, heavy) {
    if (lean in al && heavy in al && al[lean] + 0 > 0 && by[lean] + 0 > 0) {
        if (n++) printf ",\n"
        printf "  {\"date\": \"%s\", \"name\": \"%s\", \"alloc_ratio\": %.3f, \"bytes_ratio\": %.3f, " \
               "\"lean_allocs\": %s, \"heavy_allocs\": %s, \"lean_bytes\": %s, \"heavy_bytes\": %s}", \
            date, label, al[heavy] / al[lean], by[heavy] / by[lean], \
            al[lean], al[heavy], by[lean], by[heavy]
    }
}
END {
    ratio("comparison/prepared_vs_unprepared_small", \
          "BenchmarkPreparedRepair/small/prepared", "BenchmarkPreparedRepair/small/unprepared")
    ratio("comparison/prepared_vs_unprepared_mas", \
          "BenchmarkPreparedRepair/mas/prepared", "BenchmarkPreparedRepair/mas/unprepared")
    ratio("comparison/parallel_vs_sequential", \
          "BenchmarkParallelDerivation/parallel", "BenchmarkParallelDerivation/sequential")
    # Shard-local parallel evaluation on a co-partitionable workload: the
    # sharded leg fans out to NumCPU shards, sharded4 pins 4 shards for a
    # host-independent scaling figure. On a single-core host both sit
    # below 1.0 (shards run serially, partition+merge is pure overhead);
    # multi-core runs show the real speedup.
    ratio("comparison/sharded_vs_sequential", \
          "BenchmarkShardedDerivation/sharded", "BenchmarkShardedDerivation/sequential")
    ratio("scaling/sharded_speedup_4cores", \
          "BenchmarkShardedDerivation/sharded4", "BenchmarkShardedDerivation/sequential")
    ratio("comparison/fork_vs_clone", \
          "BenchmarkForkVsClone/fork", "BenchmarkForkVsClone/clone")
    ratio("comparison/step_search", \
          "BenchmarkStepSearch/fork", "BenchmarkStepSearch/clone")
    # Columnar frozen cores: same end-semantics repair with the columnar
    # read paths on vs the row-oriented reference, plus the allocation
    # reduction the zero-copy/batch-probe paths buy. Expected speedup is
    # ~1.0 (observed 0.96-1.3 across runs): the bench relations are a few
    # hundred rows, so per-probe latency differences sit inside run noise.
    # The entry is recorded for trend-watching but deliberately NOT gated
    # in check mode; the columnar win this workload can measure stably is
    # the allocation drop, gated via memory/columnar_vs_row below.
    ratio("comparison/columnar_vs_row", \
          "BenchmarkColumnarVsRow/columnar", "BenchmarkColumnarVsRow/row")
    memratio("memory/columnar_vs_row", \
             "BenchmarkColumnarVsRow/columnar", "BenchmarkColumnarVsRow/row")
    memratio("memory/fork_vs_clone", \
             "BenchmarkForkVsClone/fork", "BenchmarkForkVsClone/clone")
    # O(changes) scaling evidence, not a speedup: forking (or updating) a
    # 10x larger frozen base should cost ~1x the small-base op.
    ratio("scaling/fork_cost_10x_base", \
          "BenchmarkForkVsClone/fork", "BenchmarkForkVsClone/fork10x")
    ratio("scaling/update_cost_10x_base", \
          "BenchmarkSessionUpdate/update_only", "BenchmarkSessionUpdate/update_only_10x")
    # Serving: cached-session requests (Prepare once / Freeze once / fork
    # per request behind admission control) vs naive per-request Repair,
    # at 1, 4, and 16 concurrent clients.
    ratio("server_throughput/cached_vs_naive_c1", \
          "BenchmarkServerThroughput/cached/c1", "BenchmarkServerThroughput/naive/c1")
    ratio("server_throughput/cached_vs_naive_c4", \
          "BenchmarkServerThroughput/cached/c4", "BenchmarkServerThroughput/naive/c4")
    ratio("server_throughput/cached_vs_naive_c16", \
          "BenchmarkServerThroughput/cached/c16", "BenchmarkServerThroughput/naive/c16")
    # Repair enumeration behind the repairs/query endpoints: cost of the
    # k=8 space over the single k=1 repair. The provenance CNF is built
    # once and shared across solves, so the factor should sit well below
    # 8x; recorded for trend-watching, not gated (new entries need a few
    # snapshots of history first).
    ratio("server_repairs/k8_vs_k1_cost", \
          "BenchmarkRepairEnumeration/k1", "BenchmarkRepairEnumeration/k8")
    # Mutable sessions: small-delta update + repair on the live session vs
    # evict + rebuild + re-register + repair.
    ratio("session_update/incremental_vs_reregister", \
          "BenchmarkSessionUpdate/incremental", "BenchmarkSessionUpdate/reregister")
    # Incremental delete maintenance: delete-heavy update stream repaired
    # with warm-start hints (over-delete/re-derive + fixpoint continuation)
    # vs the same stream recomputed from scratch each version.
    ratio("session_update/incremental_delete_vs_recompute", \
          "BenchmarkDeleteMaintenance/incremental", "BenchmarkDeleteMaintenance/recompute")
    print "\n]"
}
' "$raw" > "$json"

if [ "$check" = 0 ]; then
    out="BENCH_${date}.json"
    n=2
    while [ -e "$out" ]; do
        out="BENCH_${date}.${n}.json"
        n=$((n + 1))
    done
    cp "$json" "$out"
    echo "wrote $out"
    exit 0
fi

# ---- check mode: compare key speedups against the latest snapshot ----

# Latest committed snapshot: max (date, numeric suffix); the unsuffixed
# file of a day is its first run. Lexicographic ls alone is wrong here
# ("...31.2.json" sorts before "...31.json").
baseline="$(ls BENCH_*.json 2>/dev/null | awk -F'[_.]' '
    { suffix = ($3 == "json") ? 1 : $3; printf "%s %04d %s\n", $2, suffix, $0 }
' | sort -k1,1 -k2,2n | tail -1 | awk '{print $3}')"
if [ -z "$baseline" ]; then
    echo "bench check: no committed BENCH_*.json baseline; skipping comparison"
    exit 0
fi
echo "bench check: comparing against $baseline (tolerance ${BENCH_CHECK_TOLERANCE:-25}%)"

awk -v tol="${BENCH_CHECK_TOLERANCE:-25}" -v baseline="$baseline" -v fresh="$json" '
function parse(line, arr, marr,    name, val) {
    name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    if (line ~ /"speedup"/) {
        val = line; sub(/.*"speedup": /, "", val); sub(/,.*/, "", val)
        arr[name] = val + 0
    } else if (line ~ /"alloc_ratio"/) {
        val = line; sub(/.*"alloc_ratio": /, "", val); sub(/,.*/, "", val)
        marr[name] = val + 0
    }
}
BEGIN {
    # Checked entries: large, stable cross-leg ratios. Deliberately not
    # checked: parallel_vs_sequential (~1.0 on single-core CI), the mas
    # pair (~1.1), and columnar_vs_row (~1.0; its stable signal is the
    # memory ratio, gated below) — a 25% band around parity is all noise.
    keys["comparison/prepared_vs_unprepared_small"] = 1
    keys["comparison/fork_vs_clone"] = 1
    keys["comparison/step_search"] = 1
    keys["server_throughput/cached_vs_naive_c4"] = 1
    keys["session_update/incremental_vs_reregister"] = 1
    keys["session_update/incremental_delete_vs_recompute"] = 1
    # Scaling entries must stay near 1.0: cost creeping up with base size
    # means O(changes) was lost. Checked against an absolute ceiling
    # rather than a relative band (the baseline itself is ~1.0).
    scal["scaling/fork_cost_10x_base"] = 1
    scal["scaling/update_cost_10x_base"] = 1
    # Memory-ratio entries: allocs/op of the heavy leg over the lean leg.
    # A drop below the baseline band means the lean path started
    # allocating — the zero-copy/batch-probe machinery regressed.
    mkeys["memory/columnar_vs_row"] = 1
    mkeys["memory/fork_vs_clone"] = 1

    while ((getline line < baseline) > 0) parse(line, base, mbase)
    close(baseline)
    while ((getline line < fresh) > 0) parse(line, now, mnow)
    close(fresh)

    # Sharded evaluation is gated conditionally: a single-core host
    # records a baseline below 1.0 (shards run serially there), and a
    # 25% band around a sub-1.0 number is all noise. Once a multi-core
    # snapshot establishes a genuine speedup, the entry becomes a checked
    # key and a regression below the band fails the gate. The arming
    # threshold is 1.15, not 1.0: a single-core run can drift a few
    # percent past parity on scheduler noise (the same jitter that once
    # pushed parallel_vs_sequential to 0.760 — identical B/op and
    # allocs/op across snapshots proved no code change was involved), and
    # a baseline armed by such a fluke would make every later single-core
    # run fail its floor. 1.15 is beyond single-core noise; only a real
    # multi-core speedup arms the gate.
    if (base["comparison/sharded_vs_sequential"] >= 1.15)
        keys["comparison/sharded_vs_sequential"] = 1
    if (base["scaling/sharded_speedup_4cores"] >= 1.15)
        keys["scaling/sharded_speedup_4cores"] = 1

    fail = 0
    for (k in keys) {
        if (!(k in now)) { printf "  MISSING %-45s (not produced by this run)\n", k; fail = 1; continue }
        if (!(k in base)) { printf "  skip    %-45s (no baseline entry)\n", k; continue }
        floor = base[k] * (1 - tol / 100)
        verdict = (now[k] < floor) ? "REGRESS" : "ok"
        if (verdict == "REGRESS") fail = 1
        printf "  %-7s %-45s %.3f -> %.3f (floor %.3f)\n", verdict, k, base[k], now[k], floor
    }
    for (k in mkeys) {
        if (!(k in mnow)) { printf "  MISSING %-45s (not produced by this run)\n", k; fail = 1; continue }
        if (!(k in mbase)) { printf "  skip    %-45s (no baseline entry)\n", k; continue }
        floor = mbase[k] * (1 - tol / 100)
        verdict = (mnow[k] < floor) ? "REGRESS" : "ok"
        if (verdict == "REGRESS") fail = 1
        printf "  %-7s %-45s %.3f -> %.3f allocs ratio (floor %.3f)\n", verdict, k, mbase[k], mnow[k], floor
    }
    for (k in scal) {
        if (!(k in now)) continue
        ceil = 2.0  # a 10x base must never make the op cost 2x
        verdict = (now[k] > ceil) ? "REGRESS" : "ok"
        if (verdict == "REGRESS") fail = 1
        printf "  %-7s %-45s %.3f (ceiling %.3f)\n", verdict, k, now[k], ceil
    }
    if (fail) { print "bench check FAILED: key speedup or memory ratio regressed beyond tolerance"; exit 1 }
    print "bench check passed"
}
'
