#!/usr/bin/env sh
# Run the full benchmark suite and record a dated JSON snapshot
# (BENCH_<date>.json) so the perf trajectory is tracked PR over PR.
# If the dated snapshot already exists (two runs in one day), a numeric
# suffix keeps the earlier snapshot intact.
#
# Usage: ./scripts/bench.sh [extra go-test args...]
#   e.g. ./scripts/bench.sh -benchtime=10x
set -eu

cd "$(dirname "$0")/.."

date="$(date -u +%Y-%m-%d)"
out="BENCH_${date}.json"
n=2
while [ -e "$out" ]; do
    out="BENCH_${date}.${n}.json"
    n=$((n + 1))
done
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (this regenerates every paper table/figure)..."
# No pipe into tee: plain sh has no pipefail, and a masked go-test failure
# would produce a silently truncated snapshot.
go test -bench=. -benchmem -run='^$' "$@" . > "$raw"
cat "$raw"

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}, then append
# derived comparison entries: the prepared-vs-unprepared and
# parallel-vs-sequential speedups the prepared-execution pipeline exists
# for (speedup > 1 means the first leg is faster).
awk -v date="$date" '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; nsv = $3
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix for stable names
    ns[name] = nsv
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"date\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", date, name, iters, nsv
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
function ratio(label, fast, slow) {
    if (fast in ns && slow in ns && ns[fast] + 0 > 0) {
        if (n++) printf ",\n"
        printf "  {\"date\": \"%s\", \"name\": \"%s\", \"speedup\": %.3f, \"fast_ns\": %s, \"slow_ns\": %s}", \
            date, label, ns[slow] / ns[fast], ns[fast], ns[slow]
    }
}
END {
    ratio("comparison/prepared_vs_unprepared_small", \
          "BenchmarkPreparedRepair/small/prepared", "BenchmarkPreparedRepair/small/unprepared")
    ratio("comparison/prepared_vs_unprepared_mas", \
          "BenchmarkPreparedRepair/mas/prepared", "BenchmarkPreparedRepair/mas/unprepared")
    ratio("comparison/parallel_vs_sequential", \
          "BenchmarkParallelDerivation/parallel", "BenchmarkParallelDerivation/sequential")
    ratio("comparison/fork_vs_clone", \
          "BenchmarkForkVsClone/fork", "BenchmarkForkVsClone/clone")
    ratio("comparison/step_search", \
          "BenchmarkStepSearch/fork", "BenchmarkStepSearch/clone")
    # O(changes) scaling evidence, not a speedup: forking a 10x larger
    # frozen base should cost ~1x the small-base fork (value ~1.0-1.2).
    ratio("scaling/fork_cost_10x_base", \
          "BenchmarkForkVsClone/fork", "BenchmarkForkVsClone/fork10x")
    # Serving: cached-session requests (Prepare once / Freeze once / fork
    # per request behind admission control) vs naive per-request Repair,
    # at 1, 4, and 16 concurrent clients.
    ratio("server_throughput/cached_vs_naive_c1", \
          "BenchmarkServerThroughput/cached/c1", "BenchmarkServerThroughput/naive/c1")
    ratio("server_throughput/cached_vs_naive_c4", \
          "BenchmarkServerThroughput/cached/c4", "BenchmarkServerThroughput/naive/c4")
    ratio("server_throughput/cached_vs_naive_c16", \
          "BenchmarkServerThroughput/cached/c16", "BenchmarkServerThroughput/naive/c16")
    print "\n]"
}
' "$raw" > "$out"

echo "wrote $out"
