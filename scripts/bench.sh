#!/usr/bin/env sh
# Run the full benchmark suite and record a dated JSON snapshot
# (BENCH_<date>.json) so the perf trajectory is tracked PR over PR.
#
# Usage: ./scripts/bench.sh [extra go-test args...]
#   e.g. ./scripts/bench.sh -benchtime=10x
set -eu

cd "$(dirname "$0")/.."

date="$(date -u +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (this regenerates every paper table/figure)..."
# No pipe into tee: plain sh has no pipefail, and a masked go-test failure
# would produce a silently truncated snapshot.
go test -bench=. -benchmem -run='^$' "$@" . > "$raw"
cat "$raw"

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}.
awk -v date="$date" '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix for stable names
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"date\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", date, name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
