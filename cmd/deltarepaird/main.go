// Command deltarepaird serves database repairs over HTTP: register named
// (schema, program, database) sessions once, then answer repair,
// repair-all, is-stable, and delete-view-tuple requests by forking the
// session's frozen snapshot per request — no deep copies, no re-planning.
//
//	deltarepaird -addr :8080 -demo
//
//	# register a session
//	curl -s localhost:8080/v1/sessions -d '{
//	  "name": "papers",
//	  "schema": "Author(aid, name)\nPub(pid, aid)",
//	  "program": "Delta_Pub(p, a) :- Pub(p, a), Delta_Author(a, n).",
//	  "tuples": {"Author": [[1, "alice"]], "Pub": [[10, 1]]}
//	}'
//
//	# repair it under stage semantics with a 500 ms budget
//	curl -s localhost:8080/v1/sessions/papers/repair \
//	     -d '{"semantics": "stage", "timeout_ms": 500}'
//
//	# update the base data in place: a new snapshot version is minted,
//	# untouched relations share storage with every earlier version
//	curl -s localhost:8080/v1/sessions/papers/update \
//	     -d '{"inserts": {"Pub": [[11, 1]]}, "deletes": {"Author": [[1, "alice"]]}}'
//
//	# read-your-writes: pin the version the update returned
//	curl -s localhost:8080/v1/sessions/papers/repair \
//	     -d '{"semantics": "stage", "version": 2}'
//
// See internal/server for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/programs"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "session cache capacity (LRU beyond this)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing repairs (0 = 2x GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request timeout (0 = none)")
		parallelism = flag.Int("parallelism", 0, "per-request rule-evaluation workers (0 = sequential)")
		solverNodes = flag.Int64("solver-max-nodes", 0, "default Min-Ones-SAT node budget (0 = solver default)")
		maxVersions = flag.Int("max-versions", 0, "retained snapshot versions per session for pinned reads (0 = engine default)")
		demo        = flag.Bool("demo", false, "preload the paper's running example as session \"running-example\"")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	)
	flag.Parse()

	// Profiling endpoints live on their own listener, never on the API
	// handler: enabling -pprof must not expose heap dumps and CPU
	// profiles to API clients.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	svc := server.New(server.Config{
		MaxSessions:    *maxSessions,
		MaxInFlight:    *maxInFlight,
		DefaultTimeout: *timeout,
		Parallelism:    *parallelism,
		SolverMaxNodes: *solverNodes,
		MaxVersions:    *maxVersions,
	})

	if *demo {
		db := programs.RunningExampleDB()
		prog, err := programs.RunningExampleProgram()
		if err != nil {
			log.Fatalf("demo program: %v", err)
		}
		if err := svc.Register("running-example", db.Schema, db, prog); err != nil {
			log.Fatalf("demo session: %v", err)
		}
		if err := svc.Warm("running-example"); err != nil {
			log.Fatalf("warming demo session: %v", err)
		}
		log.Printf("registered demo session %q (%d tuples)", "running-example", db.TotalTuples())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("deltarepaird listening on %s (max-inflight=%d, timeout=%s)",
		*addr, svc.MaxInFlight(), *timeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "deltarepaird: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		log.Printf("received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "deltarepaird: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
