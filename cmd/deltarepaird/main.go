// Command deltarepaird serves database repairs over HTTP: register named
// (schema, program, database) sessions once, then answer repair,
// repair-all, repairs (k-best enumeration), query (consistent answers),
// is-stable, and delete-view-tuple requests by forking the session's
// frozen snapshot per request — no deep copies, no re-planning.
//
//	deltarepaird -addr :8080 -demo
//
//	# register a session
//	curl -s localhost:8080/v1/sessions -d '{
//	  "name": "papers",
//	  "schema": "Author(aid, name)\nPub(pid, aid)",
//	  "program": "Delta_Pub(p, a) :- Pub(p, a), Delta_Author(a, n).",
//	  "tuples": {"Author": [[1, "alice"]], "Pub": [[10, 1]]}
//	}'
//
//	# repair it under stage semantics with a 500 ms budget
//	curl -s localhost:8080/v1/sessions/papers/repair \
//	     -d '{"semantics": "stage", "timeout_ms": 500}'
//
//	# update the base data in place: a new snapshot version is minted,
//	# untouched relations share storage with every earlier version
//	curl -s localhost:8080/v1/sessions/papers/update \
//	     -d '{"inserts": {"Pub": [[11, 1]]}, "deletes": {"Author": [[1, "alice"]]}}'
//
//	# read-your-writes: pin the version the update returned
//	curl -s localhost:8080/v1/sessions/papers/repair \
//	     -d '{"semantics": "stage", "version": 2}'
//
//	# enumerate the 4 best minimal repairs (independent semantics) with
//	# the per-tuple certain/possible deletion classification
//	curl -s localhost:8080/v1/sessions/papers/repairs -d '{"k": 4}'
//
//	# consistent query answering: rows certain in every repair vs
//	# possible in at least one, classified against the same repair space
//	curl -s localhost:8080/v1/sessions/papers/query \
//	     -d '{"query": "Q(p) :- Pub(p, a).", "k": 4}'
//
// With -data-dir, sessions are durable: registrations and update batches
// are persisted (write-ahead log + periodic snapshot compaction) and
// recovered after a restart:
//
//	deltarepaird -addr :8080 -data-dir /var/lib/deltarepaird
//
// See internal/server for the full API, and the README's "Durable
// sessions" section for the WAL format and recovery semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"reflect"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/programs"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "session cache capacity (LRU beyond this)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing repairs (0 = 2x GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request timeout (0 = none)")
		parallelism = flag.Int("parallelism", 0, "per-request rule-evaluation workers (0 = sequential)")
		solverNodes = flag.Int64("solver-max-nodes", 0, "default Min-Ones-SAT node budget (0 = solver default)")
		maxVersions = flag.Int("max-versions", 0, "retained snapshot versions per session for pinned reads (0 = engine default)")
		demo        = flag.Bool("demo", false, "preload the paper's running example as session \"running-example\"")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		dataDir     = flag.String("data-dir", "", "persist sessions (WAL + snapshots) under this directory; empty = in-memory only")
		fsync       = flag.Bool("fsync", true, "fsync the WAL on every update (false: OS-buffered, survives process crash but not power loss)")
		snapEvery   = flag.Int("snapshot-every", 0, "WAL records between snapshot compactions (0 = default, negative = never)")
		selfcheck   = flag.Bool("selfcheck", false, "run a persist/restart/recover round trip against -data-dir and exit")
	)
	flag.Parse()

	if *selfcheck {
		dir := *dataDir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "deltarepaird-selfcheck-*"); err != nil {
				log.Fatalf("selfcheck: %v", err)
			}
			defer os.RemoveAll(dir)
		}
		if err := selfCheck(dir); err != nil {
			log.Fatalf("selfcheck: %v", err)
		}
		log.Printf("selfcheck ok: durable session recovered byte-identically across all semantics")
		return
	}

	// Profiling endpoints live on their own listener, never on the API
	// handler: enabling -pprof must not expose heap dumps and CPU
	// profiles to API clients.
	var psrv *http.Server
	if *pprofAddr != "" {
		var err error
		if psrv, err = startPprof(*pprofAddr); err != nil {
			log.Fatalf("pprof listener: %v", err)
		}
		log.Printf("pprof listening on %s", psrv.Addr)
	}

	svc, err := server.Open(server.Config{
		MaxSessions:    *maxSessions,
		MaxInFlight:    *maxInFlight,
		DefaultTimeout: *timeout,
		Parallelism:    *parallelism,
		SolverMaxNodes: *solverNodes,
		MaxVersions:    *maxVersions,
		DataDir:        *dataDir,
		NoFsync:        !*fsync,
		SnapshotEvery:  *snapEvery,
	})
	if err != nil {
		log.Fatalf("deltarepaird: %v", err)
	}
	if svc.Durable() {
		names, err := svc.Persisted()
		if err != nil {
			log.Fatalf("scanning data dir: %v", err)
		}
		log.Printf("durable sessions in %s: %d persisted (recovered lazily on first access)", *dataDir, len(names))
	}

	if *demo {
		if err := registerDemo(svc); err != nil {
			log.Fatalf("demo session: %v", err)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("deltarepaird listening on %s (max-inflight=%d, timeout=%s)",
		*addr, svc.MaxInFlight(), *timeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "deltarepaird: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		log.Printf("received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "deltarepaird: shutdown: %v\n", err)
			os.Exit(1)
		}
		// The pprof listener drains with the API server: profiling must
		// not hold the process (or its port) alive after the drain.
		if psrv != nil {
			if err := psrv.Shutdown(ctx); err != nil {
				log.Printf("pprof shutdown: %v", err)
			}
		}
	}
	// Flush every session's WAL so a clean shutdown needs no replay.
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "deltarepaird: closing sessions: %v\n", err)
		os.Exit(1)
	}
}

// startPprof serves net/http/pprof on its own listener and returns the
// server so the drain path can shut it down. The returned server's Addr
// is the bound address (useful with ":0").
func startPprof(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	psrv := &http.Server{Addr: ln.Addr().String(), Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := psrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return psrv, nil
}

// registerDemo loads the paper's running example. With durability on, a
// previous run's persisted copy wins: recovery restores it (updates
// included) instead of re-registering from scratch.
func registerDemo(svc *server.Service) error {
	const name = "running-example"
	db := programs.RunningExampleDB()
	prog, err := programs.RunningExampleProgram()
	if err != nil {
		return err
	}
	err = svc.Register(name, db.Schema, db, prog)
	if errors.Is(err, server.ErrDuplicate) {
		log.Printf("demo session %q already persisted; recovering it instead", name)
	} else if err != nil {
		return err
	}
	if err := svc.Warm(name); err != nil {
		return err
	}
	log.Printf("registered demo session %q", name)
	return nil
}

// selfCheck exercises the durability layer end to end in one process:
// register the running example, apply update batches, record repairs under
// all four semantics, abandon the service without a clean shutdown
// (simulating a crash — the WAL is fsynced, the in-memory state is lost),
// then open a fresh service over the same data dir and assert the
// recovered session serves byte-identical repairs at the same version.
func selfCheck(dir string) error {
	const name = "selfcheck"
	cfg := server.Config{DataDir: dir, SnapshotEvery: 2}
	svc, err := server.Open(cfg)
	if err != nil {
		return err
	}
	db := programs.RunningExampleDB()
	prog, err := programs.RunningExampleProgram()
	if err != nil {
		return err
	}
	if err := svc.Register(name, db.Schema, db, prog); err != nil {
		return err
	}
	ctx := context.Background()
	// Three batches: insert, mixed, delete — with SnapshotEvery=2 this
	// crosses a compaction boundary, so recovery exercises snapshot load
	// plus WAL tail replay.
	batches := []struct{ ins, del []engine.Row }{
		{ins: []engine.Row{{Rel: "Writes", Vals: []engine.Value{engine.Int(2), engine.Int(6)}}}},
		{ins: []engine.Row{{Rel: "Cite", Vals: []engine.Value{engine.Int(6), engine.Int(7)}}},
			del: []engine.Row{{Rel: "AuthGrant", Vals: []engine.Value{engine.Int(5), engine.Int(2)}}}},
		{del: []engine.Row{{Rel: "Writes", Vals: []engine.Value{engine.Int(2), engine.Int(6)}}}},
	}
	var version uint64
	for i, b := range batches {
		res, err := svc.Update(ctx, name, b.ins, b.del, server.RequestOptions{})
		if err != nil {
			return fmt.Errorf("update %d: %v", i, err)
		}
		version = res.Version
	}
	before := make(map[core.Semantics][]string)
	for _, sem := range core.AllSemantics {
		res, _, err := svc.Repair(ctx, name, sem, server.RequestOptions{})
		if err != nil {
			return fmt.Errorf("pre-crash %s repair: %v", sem, err)
		}
		before[sem] = res.Keys()
	}
	// Crash: no svc.Close(). The acknowledged batches are durable in the
	// snapshot + WAL; the open handles are simply abandoned.

	svc2, err := server.Open(cfg)
	if err != nil {
		return fmt.Errorf("reopen: %v", err)
	}
	defer svc2.Close()
	for _, sem := range core.AllSemantics {
		res, _, gotVer, err := svc2.RepairVersioned(ctx, name, sem, server.RequestOptions{})
		if err != nil {
			return fmt.Errorf("post-recovery %s repair: %v", sem, err)
		}
		if gotVer != version {
			return fmt.Errorf("recovered head version %d, want %d", gotVer, version)
		}
		if !reflect.DeepEqual(res.Keys(), before[sem]) {
			return fmt.Errorf("%s repair diverged after recovery:\n before: %v\n after:  %v",
				sem, before[sem], res.Keys())
		}
	}
	return nil
}
