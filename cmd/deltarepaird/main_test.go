package main

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestPprofShutdown covers the drain path for the -pprof listener: it must
// serve while up and stop accepting connections after Shutdown — a leaked
// listener would hold the port (and the process) past a graceful drain.
func TestPprofShutdown(t *testing.T) {
	psrv, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("startPprof: %v", err)
	}
	url := "http://" + psrv.Addr + "/debug/pprof/"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := psrv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("pprof listener still accepting connections after Shutdown")
	}
}

// TestSelfCheck runs the persist→crash→recover round trip the -selfcheck
// flag exposes; CI drives the same path through the built binary.
func TestSelfCheck(t *testing.T) {
	if err := selfCheck(t.TempDir()); err != nil {
		t.Fatalf("selfCheck: %v", err)
	}
}
