// Command deltarepair repairs a CSV-backed database with a delta program
// under a chosen semantics.
//
// Usage:
//
//	deltarepair -schema schema.txt -program rules.dl -data ./csv [-semantics independent] [-out ./repaired] [-show 20]
//
// The schema file declares one relation per line ("Author(aid, name)");
// the data directory holds one headerless CSV per relation (Author.csv);
// the program file holds delta rules in the syntax of the paper, e.g.
//
//	(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
//	(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
//
// With no flags the built-in running example of the paper (Figures 1-2) is
// repaired under all four semantics — a zero-setup demo.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	deltarepair "repro"
	"repro/internal/core"
	"repro/internal/programs"
	"repro/internal/report"
	"repro/internal/sqlgen"
	"repro/internal/viz"
)

// splitLines splits rendered explanation trees for indentation.
func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

// emitSQLArtifacts prints the SQL form of the schema and program (the
// paper's own implementation strategy) instead of executing a repair.
func emitSQLArtifacts(db *deltarepair.Database, prog *deltarepair.Program, withSchema bool, triggerDialect string) error {
	if withSchema {
		fmt.Println("-- Schema DDL (base + delta tables):")
		fmt.Println(sqlgen.SchemaDDL(db.Schema))
		script, err := sqlgen.ProgramScript(prog, db.Schema)
		if err != nil {
			return err
		}
		fmt.Println(script)
	}
	if triggerDialect != "" {
		var d sqlgen.Dialect
		switch triggerDialect {
		case "postgres", "postgresql":
			d = sqlgen.Postgres
		case "mysql":
			d = sqlgen.MySQL
		default:
			return fmt.Errorf("unknown trigger dialect %q", triggerDialect)
		}
		ddl, err := sqlgen.TriggerDDL(prog, db.Schema, d)
		if err != nil {
			return err
		}
		fmt.Println(ddl)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deltarepair:", err)
		os.Exit(1)
	}
}

func run() error {
	schemaPath := flag.String("schema", "", "schema declaration file (Name(attr, ...) per line)")
	programPath := flag.String("program", "", "delta program file")
	dataDir := flag.String("data", "", "directory of <Relation>.csv files")
	semName := flag.String("semantics", "all", "independent | step | stage | end | all")
	outDir := flag.String("out", "", "write repaired relations as CSVs to this directory")
	show := flag.Int("show", 15, "print up to this many deleted tuples")
	explain := flag.Bool("explain", false, "print a derivation tree for each deleted tuple")
	emitSQL := flag.Bool("emit-sql", false, "print schema DDL and one evaluation round of the program as SQL, then exit")
	emitTriggers := flag.String("emit-triggers", "", "print AFTER DELETE trigger DDL for the given dialect (postgres | mysql), then exit")
	dotPath := flag.String("dot", "", "write the provenance graph (Figure 5 style) as Graphviz DOT to this file")
	reportPath := flag.String("report", "", "write a full Markdown repair analysis (all semantics) to this file")
	flag.Parse()

	var db *deltarepair.Database
	var prog *deltarepair.Program
	if *schemaPath == "" && *programPath == "" && *dataDir == "" {
		fmt.Println("No inputs given; repairing the paper's running example (Figures 1-2).")
		db = programs.RunningExampleDB()
		p, err := programs.RunningExampleProgram()
		if err != nil {
			return err
		}
		prog = p
	} else {
		if *schemaPath == "" || *programPath == "" || *dataDir == "" {
			return fmt.Errorf("-schema, -program and -data must be given together")
		}
		schemaSrc, err := os.ReadFile(*schemaPath)
		if err != nil {
			return err
		}
		schema, err := deltarepair.ParseSchema(string(schemaSrc))
		if err != nil {
			return err
		}
		db = deltarepair.NewDatabase(schema)
		for _, rs := range schema.Relations {
			path := filepath.Join(*dataDir, rs.Name+".csv")
			if _, statErr := os.Stat(path); statErr != nil {
				fmt.Printf("  (no data file for %s, relation starts empty)\n", rs.Name)
				continue
			}
			n, err := db.LoadCSVFile(rs.Name, path)
			if err != nil {
				return err
			}
			fmt.Printf("  loaded %d tuples into %s\n", n, rs.Name)
		}
		progSrc, err := os.ReadFile(*programPath)
		if err != nil {
			return err
		}
		prog, err = deltarepair.ParseProgram(string(progSrc), schema)
		if err != nil {
			return err
		}
	}

	if *emitSQL || *emitTriggers != "" {
		return emitSQLArtifacts(db, prog, *emitSQL, *emitTriggers)
	}
	if *dotPath != "" {
		graph, err := core.CaptureProvenance(db, prog)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dotPath, []byte(viz.ProvenanceDOT(graph, db.DisplayKey)), 0o644); err != nil {
			return err
		}
		fmt.Printf("provenance graph written to %s (%d delta nodes, %d layers)\n\n",
			*dotPath, len(graph.Heads), graph.NumLayers)
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		if err := report.Generate(f, db, prog, report.Options{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("repair report written to %s\n\n", *reportPath)
	}

	stable, err := deltarepair.IsStable(db, prog)
	if err != nil {
		return err
	}
	fmt.Printf("Database: %d tuples; stable: %v\n\n", db.TotalTuples(), stable)

	var sems []deltarepair.Semantics
	switch *semName {
	case "independent":
		sems = []deltarepair.Semantics{deltarepair.Independent}
	case "step":
		sems = []deltarepair.Semantics{deltarepair.Step}
	case "stage":
		sems = []deltarepair.Semantics{deltarepair.Stage}
	case "end":
		sems = []deltarepair.Semantics{deltarepair.End}
	case "all":
		sems = deltarepair.AllSemantics
	default:
		return fmt.Errorf("unknown semantics %q", *semName)
	}

	var explainer *deltarepair.Explainer
	if *explain {
		explainer, err = deltarepair.NewExplainer(db, prog)
		if err != nil {
			return err
		}
	}

	for _, sem := range sems {
		res, repaired, err := deltarepair.Repair(db, prog, sem)
		if err != nil {
			return err
		}
		fmt.Printf("%s semantics: %d tuples deleted (eval %v",
			sem, res.Size(), res.Timing.Eval.Round(10e3))
		if res.Timing.Solve > 0 {
			fmt.Printf(", solve %v", res.Timing.Solve.Round(10e3))
		}
		if res.Timing.Traverse > 0 {
			fmt.Printf(", traverse %v", res.Timing.Traverse.Round(10e3))
		}
		fmt.Println(")")
		for i, t := range res.Deleted {
			if i >= *show {
				fmt.Printf("  ... and %d more\n", res.Size()-*show)
				break
			}
			fmt.Printf("  - %s\n", t)
			if explainer != nil {
				if e := explainer.Explain(t.Key()); e != nil {
					for _, line := range splitLines(e.String()) {
						fmt.Printf("      %s\n", line)
					}
				} else {
					fmt.Printf("      (no derivation: chosen directly by the optimizer)\n")
				}
			}
		}
		if *outDir != "" && len(sems) == 1 {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			for _, rs := range repaired.Schema.Relations {
				path := filepath.Join(*outDir, rs.Name+".csv")
				if err := repaired.WriteCSVFile(rs.Name, path); err != nil {
					return err
				}
			}
			fmt.Printf("repaired relations written to %s\n", *outDir)
		}
		fmt.Println()
	}
	return nil
}
