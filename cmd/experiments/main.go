// Command experiments regenerates the paper's tables and figures:
//
//	experiments -exp all                 # everything (default)
//	experiments -exp table3              # containment flags (Table 3)
//	experiments -exp fig6                # result sizes (Figures 6a/6b/6c)
//	experiments -exp fig7                # MAS runtimes (Figure 7)
//	experiments -exp fig8                # Algorithm 1/2 runtime breakdown (Figure 8)
//	experiments -exp fig9                # TPC-H sizes and runtimes (Figures 9a/9b)
//	experiments -exp table4 | table5     # HoloClean comparison tables
//	experiments -exp fig10               # HoloClean runtime sweeps (Figures 10a/10b)
//	experiments -exp triggers            # PostgreSQL/MySQL trigger comparison
//	experiments -exp ablations           # design-choice ablations
//
// Scales default to laptop-friendly fractions of the paper's datasets while
// preserving every reported shape; raise -mas-scale / -tpch-scale / -rows
// toward 1.0 / 5000 to approach the paper's sizes (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment to run (all, table3, fig6, fig7, fig8, fig9, table4, table5, fig10, triggers, ablations)")
	masScale := flag.Float64("mas-scale", 0.05, "MAS dataset scale (1.0 ≈ 124K tuples)")
	tpchScale := flag.Float64("tpch-scale", 0.02, "TPC-H dataset scale (1.0 ≈ 376K tuples)")
	rows := flag.Int("rows", 5000, "Author-table rows for the HoloClean comparison")
	seed := flag.Int64("seed", 1, "dataset generation seed")
	indNodes := flag.Int64("ind-max-nodes", 0, "Min-Ones solver node budget (0 = default)")
	flag.Parse()

	cfg := experiments.Config{
		MASScale:    *masScale,
		TPCHScale:   *tpchScale,
		Rows:        *rows,
		Seed:        *seed,
		IndMaxNodes: *indNodes,
	}
	out := os.Stdout

	want := func(names ...string) bool {
		if *exp == "all" {
			return true
		}
		for _, n := range names {
			if *exp == n {
				return true
			}
		}
		return false
	}

	var masRuns []*experiments.ProgramRun
	if want("table3", "fig6", "fig7", "fig8") {
		fmt.Fprintf(out, "== Running MAS programs 1-20 (scale %.3f) ==\n", *masScale)
		runs, ds, err := experiments.RunMAS(cfg, nil)
		if err != nil {
			return err
		}
		masRuns = runs
		fmt.Fprintf(out, "MAS dataset: %d tuples (hub org %d authors, hub author %d writes)\n\n",
			ds.Total(), ds.HubOrgAuthors, ds.HubAuthorWrites)
	}
	var tpchRuns []*experiments.ProgramRun
	if want("table3", "fig9") {
		fmt.Fprintf(out, "== Running TPC-H programs T-1..T-6 (scale %.3f) ==\n", *tpchScale)
		runs, ds, err := experiments.RunTPCH(cfg, nil)
		if err != nil {
			return err
		}
		tpchRuns = runs
		fmt.Fprintf(out, "TPC-H dataset: %d tuples\n\n", ds.Total())
	}

	if want("table3") {
		fmt.Fprintln(out, "-- Table 3: containment of results --")
		experiments.WriteTable3(out, experiments.Table3(append(append([]*experiments.ProgramRun(nil), masRuns...), tpchRuns...)))
		fmt.Fprintln(out)
	}
	if want("fig6") {
		group := func(lo, hi int) []*experiments.ProgramRun {
			var g []*experiments.ProgramRun
			for _, r := range masRuns {
				if r.Number >= lo && r.Number <= hi {
					g = append(g, r)
				}
			}
			return g
		}
		experiments.WriteSizes(out, "-- Figure 6a: result sizes, programs 1-10 --", experiments.Sizes(group(1, 10)))
		fmt.Fprintln(out)
		experiments.WriteSizes(out, "-- Figure 6b: result sizes, programs 11-15 --", experiments.Sizes(group(11, 15)))
		fmt.Fprintln(out)
		experiments.WriteSizes(out, "-- Figure 6c: result sizes, programs 16-20 --", experiments.Sizes(group(16, 20)))
		fmt.Fprintln(out)
	}
	if want("fig7") {
		experiments.WriteTimes(out, "-- Figure 7: execution times, programs 1-20 --", experiments.Times(masRuns))
		fmt.Fprintln(out)
	}
	if want("fig8") {
		fmt.Fprintln(out, "-- Figure 8: runtime breakdown of Algorithms 1 and 2 --")
		rows := experiments.Breakdown(masRuns, "programs 1-15", func(r *experiments.ProgramRun) bool { return r.Number <= 15 })
		rows = append(rows, experiments.Breakdown(masRuns, "programs 16-20", func(r *experiments.ProgramRun) bool { return r.Number >= 16 })...)
		experiments.WriteBreakdown(out, rows)
		fmt.Fprintln(out)
	}
	if want("fig9") {
		experiments.WriteSizes(out, "-- Figure 9a: TPC-H result sizes --", experiments.Sizes(tpchRuns))
		fmt.Fprintln(out)
		experiments.WriteTimes(out, "-- Figure 9b: TPC-H execution times --", experiments.Times(tpchRuns))
		fmt.Fprintln(out)
	}
	if want("table4", "table5") {
		fmt.Fprintf(out, "== HoloClean comparison (%d rows) ==\n", *rows)
		t4, t5, err := experiments.Tables4And5(cfg)
		if err != nil {
			return err
		}
		if want("table4") {
			fmt.Fprintln(out, "-- Table 4: over-deletions (+) vs HoloClean repair shortfall (−) --")
			experiments.WriteTable4(out, t4)
			fmt.Fprintln(out)
		}
		if want("table5") {
			fmt.Fprintln(out, "-- Table 5: violating tuples after/before repair --")
			experiments.WriteTable5(out, t5)
			fmt.Fprintln(out)
		}
	}
	if want("fig10") {
		fmt.Fprintln(out, "-- Figure 10a: runtime vs #errors --")
		a, err := experiments.Fig10Errors(cfg)
		if err != nil {
			return err
		}
		experiments.WriteFig10(out, "Errors", a)
		fmt.Fprintln(out)
		fmt.Fprintln(out, "-- Figure 10b: runtime vs #rows --")
		b, err := experiments.Fig10Rows(cfg, nil)
		if err != nil {
			return err
		}
		experiments.WriteFig10(out, "Rows", b)
		fmt.Fprintln(out)
	}
	if want("triggers") {
		fmt.Fprintln(out, "-- Trigger comparison (programs 3, 4, 5, 8, 20) --")
		rows, err := experiments.TriggerComparison(cfg)
		if err != nil {
			return err
		}
		experiments.WriteTriggerComparison(out, rows)
		fmt.Fprintln(out)
	}
	if want("ablations") {
		fmt.Fprintln(out, "-- Ablations --")
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		experiments.WriteAblations(out, rows)
		fmt.Fprintln(out)
	}
	return nil
}
