// Command repair-debug is an interactive step-semantics debugger: it loads
// a database and delta program (the same -schema/-program/-data flags as
// cmd/deltarepair, or the paper's running example by default) and lets you
// be the nondeterministic scheduler of Def. 3.5 — listing the currently
// deletable tuples, firing them one at a time, undoing, asking for
// explanations, and handing the remainder to any automatic semantics.
//
//	repair-debug                       # the paper's running example
//	repair-debug -schema s.txt -program p.dl -data ./csv
//
// Session commands: violations, fire N, undo, auto <semantics>,
// show <relation>, explain N, status, help, quit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	deltarepair "repro"
	"repro/internal/programs"
	"repro/internal/repl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repair-debug:", err)
		os.Exit(1)
	}
}

func run() error {
	schemaPath := flag.String("schema", "", "schema declaration file")
	programPath := flag.String("program", "", "delta program file")
	dataDir := flag.String("data", "", "directory of <Relation>.csv files")
	flag.Parse()

	var db *deltarepair.Database
	var prog *deltarepair.Program
	if *schemaPath == "" && *programPath == "" && *dataDir == "" {
		fmt.Println("No inputs given; debugging the paper's running example (Figures 1-2).")
		db = programs.RunningExampleDB()
		p, err := programs.RunningExampleProgram()
		if err != nil {
			return err
		}
		prog = p
	} else {
		if *schemaPath == "" || *programPath == "" || *dataDir == "" {
			return fmt.Errorf("-schema, -program and -data must be given together")
		}
		schemaSrc, err := os.ReadFile(*schemaPath)
		if err != nil {
			return err
		}
		schema, err := deltarepair.ParseSchema(string(schemaSrc))
		if err != nil {
			return err
		}
		db = deltarepair.NewDatabase(schema)
		for _, rs := range schema.Relations {
			path := filepath.Join(*dataDir, rs.Name+".csv")
			if _, statErr := os.Stat(path); statErr != nil {
				continue
			}
			if _, err := db.LoadCSVFile(rs.Name, path); err != nil {
				return err
			}
		}
		progSrc, err := os.ReadFile(*programPath)
		if err != nil {
			return err
		}
		prog, err = deltarepair.ParseProgram(string(progSrc), schema)
		if err != nil {
			return err
		}
	}
	return repl.New(db, prog, os.Stdout).Run(os.Stdin)
}
