package deltarepair_test

import (
	"strings"
	"testing"

	deltarepair "repro"
)

const apiSchemaSrc = `
# running example schema
Grant(gid, name)
AuthGrant:ag(aid, gid)
Author(aid, name)
Writes:w(aid, pid)
Pub:p(pid, title)
Cite:c(citing, cited)
`

const apiProgramSrc = `
(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
(2) Delta_Pub(p, t) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(3) Delta_Writes(a, p) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(4) Delta_Cite(c, p) :- Cite(c, p), Delta_Pub(p, t), Writes(a1, c), Writes(a2, p).
`

func apiDB(t testing.TB) (*deltarepair.Database, *deltarepair.Program) {
	t.Helper()
	schema, err := deltarepair.ParseSchema(apiSchemaSrc)
	if err != nil {
		t.Fatal(err)
	}
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("Grant", deltarepair.Int(1), deltarepair.Str("NSF"))
	db.MustInsert("Grant", deltarepair.Int(2), deltarepair.Str("ERC"))
	db.MustInsert("AuthGrant", deltarepair.Int(2), deltarepair.Int(1))
	db.MustInsert("AuthGrant", deltarepair.Int(4), deltarepair.Int(2))
	db.MustInsert("AuthGrant", deltarepair.Int(5), deltarepair.Int(2))
	db.MustInsert("Author", deltarepair.Int(2), deltarepair.Str("Maggie"))
	db.MustInsert("Author", deltarepair.Int(4), deltarepair.Str("Marge"))
	db.MustInsert("Author", deltarepair.Int(5), deltarepair.Str("Homer"))
	db.MustInsert("Cite", deltarepair.Int(7), deltarepair.Int(6))
	db.MustInsert("Writes", deltarepair.Int(4), deltarepair.Int(6))
	db.MustInsert("Writes", deltarepair.Int(5), deltarepair.Int(7))
	db.MustInsert("Pub", deltarepair.Int(6), deltarepair.Str("x"))
	db.MustInsert("Pub", deltarepair.Int(7), deltarepair.Str("y"))
	prog, err := deltarepair.ParseProgram(apiProgramSrc, schema)
	if err != nil {
		t.Fatal(err)
	}
	return db, prog
}

func TestPublicAPIRunningExample(t *testing.T) {
	db, prog := apiDB(t)

	stable, err := deltarepair.IsStable(db, prog)
	if err != nil || stable {
		t.Fatalf("the running example is unstable, got stable=%v err=%v", stable, err)
	}

	wantSizes := map[deltarepair.Semantics]int{
		deltarepair.Independent: 3,
		deltarepair.Step:        5,
		deltarepair.Stage:       7,
		deltarepair.End:         8,
	}
	for sem, want := range wantSizes {
		res, repaired, err := deltarepair.Repair(db, prog, sem)
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		if res.Size() != want {
			t.Fatalf("%s size = %d, want %d", sem, res.Size(), want)
		}
		ok, err := deltarepair.IsStable(repaired, prog)
		if err != nil || !ok {
			t.Fatalf("%s: repaired database unstable", sem)
		}
		ok, err = deltarepair.IsStabilizingSet(db, prog, res.Keys())
		if err != nil || !ok {
			t.Fatalf("%s: result not a stabilizing set", sem)
		}
	}
}

func TestPublicAPIRepairAllAndOptions(t *testing.T) {
	db, prog := apiDB(t)
	all, err := deltarepair.RepairAll(db, prog)
	if err != nil || len(all) != 4 {
		t.Fatalf("RepairAll: %v, %v", all, err)
	}
	res, _, err := deltarepair.RepairWith(db, prog, deltarepair.Independent,
		deltarepair.Options{Independent: deltarepair.IndependentOptions{MaxNodes: 1000}})
	if err != nil || res.Size() != 3 {
		t.Fatalf("RepairWith: %v, %v", res, err)
	}
	if len(deltarepair.AllSemantics) != 4 {
		t.Fatal("AllSemantics should list 4 semantics")
	}
}

func TestParseSchemaForms(t *testing.T) {
	s, err := deltarepair.ParseSchema("R(a, b)\nS:sx(c) # trailing comment\n% comment line\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Relation("S").IDPrefix != "sx" {
		t.Fatalf("prefix = %q", s.Relation("S").IDPrefix)
	}
	if s.Relation("R").Arity() != 2 {
		t.Fatal("R arity wrong")
	}
	bad := []string{
		"",           // empty
		"R a, b",     // no parens
		"R(a,)",      // empty attr
		"R(a)\nR(b)", // duplicate
		"(a, b)",     // no name
	}
	for _, src := range bad {
		if _, err := deltarepair.ParseSchema(src); err == nil {
			t.Errorf("ParseSchema(%q) should fail", src)
		}
	}
}

func TestValueConstructors(t *testing.T) {
	if deltarepair.Int(3).Int != 3 || deltarepair.Int64(4).Int != 4 {
		t.Fatal("int constructors wrong")
	}
	if deltarepair.Str("x").Str != "x" {
		t.Fatal("string constructor wrong")
	}
	if deltarepair.Float(2.5).Flt != 2.5 {
		t.Fatal("float constructor wrong")
	}
}

func TestResultReporting(t *testing.T) {
	db, prog := apiDB(t)
	res, _, err := deltarepair.Repair(db, prog, deltarepair.Independent)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "independent") {
		t.Fatalf("result string: %q", res.String())
	}
	by := res.ByRelation()
	if by["AuthGrant"] != 2 || by["Grant"] != 1 {
		t.Fatalf("ByRelation = %v", by)
	}
}
